// Package greedy provides sequential MIS baselines: the classical greedy
// sweep in a given vertex order. It serves three roles in the
// reproduction: ground truth in tests, the "deterministic algorithm" run on
// the small shattered components (the paper notes each bad component "can
// be processed by a deterministic algorithm since each component is
// small"), and a size baseline for reporting.
package greedy

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mis/base"
)

// MIS computes the greedy MIS of g sweeping vertices in increasing ID
// order: a vertex joins iff no earlier neighbor joined.
func MIS(g *graph.Graph) []bool {
	in := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if blocked[v] {
			continue
		}
		in[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	return in
}

// MISInOrder computes the greedy MIS sweeping vertices in the given order,
// which must be a permutation of 0..n-1.
func MISInOrder(g *graph.Graph, order []int) ([]bool, error) {
	if len(order) != g.N() {
		return nil, fmt.Errorf("greedy: order has %d entries for %d vertices", len(order), g.N())
	}
	seen := make([]bool, g.N())
	for _, v := range order {
		if v < 0 || v >= g.N() || seen[v] {
			return nil, fmt.Errorf("greedy: order is not a permutation (at %d)", v)
		}
		seen[v] = true
	}
	in := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for _, v := range order {
		if blocked[v] {
			continue
		}
		in[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	return in, nil
}

// Statuses converts a membership vector into the shared status vocabulary.
func Statuses(g *graph.Graph, in []bool) []base.Status {
	st := make([]base.Status, g.N())
	for v := range st {
		if in[v] {
			st[v] = base.StatusInMIS
		} else {
			st[v] = base.StatusDominated
		}
	}
	return st
}
