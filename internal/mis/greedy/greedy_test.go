package greedy

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
)

func TestMISValidOnFamilies(t *testing.T) {
	r := rng.New(1)
	cases := map[string]*graph.Graph{
		"path":   gen.Path(40),
		"cycle":  gen.Cycle(41),
		"star":   gen.Star(30),
		"tree":   gen.RandomTree(200, r.Split(1)),
		"gnp":    gen.GNP(100, 0.1, r.Split(2)),
		"empty":  graph.MustNew(5, nil),
		"single": graph.MustNew(1, nil),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			if err := g.VerifyMIS(MIS(g)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMISIDOrderDeterministic(t *testing.T) {
	g := gen.GNP(60, 0.2, rng.New(2))
	a, b := MIS(g), MIS(g)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("greedy not deterministic")
		}
	}
}

func TestMISPathPattern(t *testing.T) {
	// Greedy in ID order on a path picks 0, 2, 4, ...
	in := MIS(gen.Path(7))
	for v := 0; v < 7; v++ {
		if in[v] != (v%2 == 0) {
			t.Fatalf("path greedy: in[%d] = %v", v, in[v])
		}
	}
}

func TestMISInOrderPermutations(t *testing.T) {
	g := gen.GNP(30, 0.2, rng.New(3))
	r := rng.New(4)
	if err := quick.Check(func(seed uint64) bool {
		order := r.Split(seed).Perm(g.N())
		in, err := MISInOrder(g, order)
		if err != nil {
			return false
		}
		return g.VerifyMIS(in) == nil
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMISInOrderRejectsBadOrders(t *testing.T) {
	g := gen.Path(4)
	bad := [][]int{
		{0, 1, 2},     // short
		{0, 1, 2, 2},  // duplicate
		{0, 1, 2, 9},  // out of range
		{0, 1, 2, -1}, // negative
	}
	for i, order := range bad {
		if _, err := MISInOrder(g, order); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestMISInOrderReversalDiffers(t *testing.T) {
	// On a path, sweeping in reverse picks the other parity — evidence the
	// order parameter is actually honored.
	g := gen.Path(6)
	rev := []int{5, 4, 3, 2, 1, 0}
	in, err := MISInOrder(g, rev)
	if err != nil {
		t.Fatal(err)
	}
	if !in[5] || in[4] || !in[3] {
		t.Fatalf("reverse sweep wrong: %v", in)
	}
}

func TestStatuses(t *testing.T) {
	g := gen.Path(3)
	st := Statuses(g, MIS(g))
	if err := base.VerifyStatuses(g, st); err != nil {
		t.Fatal(err)
	}
}
