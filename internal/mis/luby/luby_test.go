package luby

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
)

func families(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	r := rng.New(100)
	return map[string]*graph.Graph{
		"path":     gen.Path(60),
		"cycle":    gen.Cycle(61),
		"star":     gen.Star(45),
		"tree":     gen.RandomTree(250, r.Split(1)),
		"grid":     gen.Grid(10, 14),
		"gnp":      gen.GNP(120, 0.12, r.Split(2)),
		"union3":   gen.UnionOfTrees(150, 3, r.Split(3)),
		"isolated": graph.MustNew(7, nil),
	}
}

func TestAlgorithmAProducesMIS(t *testing.T) {
	for name, g := range families(t) {
		t.Run(name, func(t *testing.T) {
			statuses, _, err := RunA(g, congest.Options{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if err := base.VerifyStatuses(g, statuses); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlgorithmBProducesMIS(t *testing.T) {
	for name, g := range families(t) {
		t.Run(name, func(t *testing.T) {
			statuses, _, err := RunB(g, congest.Options{Seed: 12})
			if err != nil {
				t.Fatal(err)
			}
			if err := base.VerifyStatuses(g, statuses); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlgorithmBManySeeds(t *testing.T) {
	g := gen.UnionOfTrees(80, 2, rng.New(7))
	for seed := uint64(0); seed < 20; seed++ {
		statuses, _, err := RunB(g, congest.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := base.VerifyStatuses(g, statuses); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAlgorithmAManySeeds(t *testing.T) {
	g := gen.GNP(90, 0.1, rng.New(8))
	for seed := uint64(0); seed < 20; seed++ {
		statuses, _, err := RunA(g, congest.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := base.VerifyStatuses(g, statuses); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestNewASaturatesRange(t *testing.T) {
	// n large enough that n^4 overflows: factory must still work.
	f := NewA(1 << 20)
	nd := f(0).(*nodeA)
	if nd.rangeMax != ^uint64(0) {
		t.Fatalf("rangeMax = %d, want saturation", nd.rangeMax)
	}
}

func TestNewATinyN(t *testing.T) {
	statusesG := graph.MustNew(1, nil)
	statuses, _, err := RunA(statusesG, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if statuses[0] != base.StatusInMIS {
		t.Fatal("singleton not in MIS")
	}
}

func TestBParallelDriverIdentical(t *testing.T) {
	g := gen.RandomTree(150, rng.New(9))
	seq, seqRes, err := RunB(g, congest.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, parRes, err := RunB(g, congest.Options{Seed: 4, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes != parRes {
		t.Fatalf("stats differ: %+v vs %+v", seqRes, parRes)
	}
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("node %d differs", v)
		}
	}
}

func TestBCompleteGraphPicksOne(t *testing.T) {
	g := gen.GNP(15, 1, rng.New(1))
	for seed := uint64(0); seed < 8; seed++ {
		statuses, _, err := RunB(g, congest.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got := graph.SetSize(base.MISSet(statuses)); got != 1 {
			t.Fatalf("K15 MIS size %d", got)
		}
	}
}

func TestBRoundsLogarithmic(t *testing.T) {
	g := gen.GNP(400, 0.05, rng.New(2))
	_, res, err := RunB(g, congest.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3*12*9 { // generous O(log n) check
		t.Fatalf("took %d rounds", res.Rounds)
	}
}
