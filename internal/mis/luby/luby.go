// Package luby implements the two classical randomized MIS algorithms from
// Luby's 1986 paper, the O(log n)-round baselines the reproduced paper
// measures progress against.
//
// Algorithm A: each active node draws an integer priority uniformly from
// {0, ..., n⁴-1} and joins the MIS when its priority (with ID tie-break)
// beats all active neighbors. The paper under reproduction notes this is
// "essentially identical to the algorithm of Métivier et al.", differing
// only in the priority range.
//
// Algorithm B (what the literature usually calls "Luby's algorithm"): each
// active node marks itself with probability 1/(2d(v)), where d(v) is its
// current active degree; when two marked nodes are adjacent, the lower-
// degree one (ID tie-break) unmarks; surviving marked nodes join.
//
// Both use three CONGEST rounds per iteration.
package luby

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// nodeA runs Algorithm A.
type nodeA struct {
	status   base.Status
	priority uint64
	rangeMax uint64
}

// Status implements base.Membership.
func (nd *nodeA) Status() base.Status { return nd.status }

// NewA returns a factory for Algorithm A on an n-vertex graph (priorities
// drawn from {0..n⁴-1}; collisions are real and broken by ID, exactly the
// regime Luby analyzed).
func NewA(n int) func(v int) congest.Node {
	// n⁴ as uint64 saturates for n >= 2^16; saturation only widens the
	// range, which preserves the algorithm's guarantees.
	r := uint64(1)
	for i := 0; i < 4; i++ {
		next := r * uint64(n)
		if n != 0 && next/uint64(n) != r {
			r = ^uint64(0)
			break
		}
		r = next
	}
	if r == 0 {
		r = 1
	}
	return func(int) congest.Node {
		return &nodeA{status: base.StatusActive, rangeMax: r}
	}
}

// RunA executes Algorithm A on g.
func RunA(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
	r := congest.NewRunner(g, NewA(g.N()), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

func (nd *nodeA) Init(ctx *congest.Context) { nd.start(ctx) }

func (nd *nodeA) start(ctx *congest.Context) {
	nd.priority = ctx.RNG().Uint64() % nd.rangeMax
	ctx.Broadcast(proto.Priority{Value: nd.priority, Competitive: true}.Wire())
}

func (nd *nodeA) Round(ctx *congest.Context, inbox []congest.Message) {
	switch ctx.Round() % 3 {
	case 1:
		win := true
		for _, m := range inbox {
			if p, ok := proto.AsPriority(m.Wire); ok {
				if p.Value > nd.priority || (p.Value == nd.priority && m.From > ctx.ID()) {
					win = false
					break
				}
			}
		}
		if win {
			nd.status = base.StatusInMIS
			ctx.Broadcast(proto.Flag{Kind: proto.KindJoined}.Wire())
			ctx.Halt()
		}
	case 2:
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindJoined {
				nd.status = base.StatusDominated
				ctx.Broadcast(proto.Flag{Kind: proto.KindRemoved}.Wire())
				ctx.Halt()
				return
			}
		}
	case 0:
		nd.start(ctx)
	}
}

// nodeB runs Algorithm B.
type nodeB struct {
	status base.Status
	active *base.ActiveSet
	marked bool
	myDeg  int
}

// Status implements base.Membership.
func (nd *nodeB) Status() base.Status { return nd.status }

// NewB returns a factory for Algorithm B.
func NewB() func(v int) congest.Node {
	return func(int) congest.Node {
		return &nodeB{status: base.StatusActive}
	}
}

// RunB executes Algorithm B on g.
func RunB(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
	r := congest.NewRunner(g, NewB(), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

func (nd *nodeB) Init(ctx *congest.Context) {
	nd.active = base.NewActiveSet(ctx.Neighbors())
	nd.start(ctx)
}

// start is phase 0: decide whether to mark, and announce marks (with the
// degree needed for conflict resolution).
func (nd *nodeB) start(ctx *congest.Context) {
	nd.myDeg = nd.active.Count()
	if nd.myDeg == 0 {
		nd.status = base.StatusInMIS
		ctx.Halt()
		return
	}
	nd.marked = ctx.RNG().Bool(1 / (2 * float64(nd.myDeg)))
	if nd.marked {
		ctx.Broadcast(proto.Degree{Value: int32(nd.myDeg)}.Wire())
	}
}

func (nd *nodeB) Round(ctx *congest.Context, inbox []congest.Message) {
	switch ctx.Round() % 3 {
	case 1: // conflict resolution among marked nodes
		if !nd.marked {
			return
		}
		for _, m := range inbox {
			d, ok := proto.AsDegree(m.Wire)
			if !ok || !nd.active.Contains(m.From) {
				continue
			}
			// The lower-degree endpoint unmarks; ties break toward the
			// lower ID unmarking.
			if int(d.Value) > nd.myDeg || (int(d.Value) == nd.myDeg && m.From > ctx.ID()) {
				nd.marked = false
				break
			}
		}
		if nd.marked {
			nd.status = base.StatusInMIS
			ctx.Broadcast(proto.Flag{Kind: proto.KindJoined}.Wire())
			ctx.Halt()
		}
	case 2: // join announcements
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindJoined {
				nd.status = base.StatusDominated
				ctx.Broadcast(proto.Flag{Kind: proto.KindRemoved}.Wire())
				ctx.Halt()
				return
			}
		}
	case 0: // removals arrived; next iteration
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindRemoved {
				nd.active.Remove(m.From)
			}
		}
		nd.start(ctx)
	}
}

// ExportState packs the node's observable output (its status) for the
// distributed driver's cross-process state transfer (congest.Porter).
func (nd *nodeA) ExportState() uint64 { return uint64(nd.status) }

// ImportState restores a status packed by ExportState.
func (nd *nodeA) ImportState(x uint64) { nd.status = base.Status(x) }

// ExportState packs the node's observable output (its status) for the
// distributed driver's cross-process state transfer (congest.Porter).
func (nd *nodeB) ExportState() uint64 { return uint64(nd.status) }

// ImportState restores a status packed by ExportState.
func (nd *nodeB) ImportState(x uint64) { nd.status = base.Status(x) }
