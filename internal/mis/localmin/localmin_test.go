package localmin

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/greedy"
	"repro/internal/rng"
)

func TestProducesMISOnFamilies(t *testing.T) {
	r := rng.New(1)
	cases := map[string]*graph.Graph{
		"path":     gen.Path(50),
		"cycle":    gen.Cycle(33),
		"star":     gen.Star(20),
		"tree":     gen.RandomTree(200, r.Split(1)),
		"gnp":      gen.GNP(100, 0.1, r.Split(2)),
		"isolated": graph.MustNew(6, nil),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			statuses, _, err := Run(g, congest.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := base.VerifyStatuses(g, statuses); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMatchesSequentialGreedy(t *testing.T) {
	// Distributed local-min MIS computes exactly the greedy-by-ID MIS:
	// both are the lexicographically first MIS.
	r := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		g := gen.GNP(80, 0.1, r.Split(uint64(trial)))
		statuses, _, err := Run(g, congest.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := greedy.MIS(g)
		got := base.MISSet(statuses)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("trial %d: node %d greedy=%v localmin=%v", trial, v, want[v], got[v])
			}
		}
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	g := gen.RandomTree(100, rng.New(3))
	a, _, err := Run(g, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(g, congest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("seed changed a deterministic algorithm's output")
		}
	}
}

func TestRoundsBoundedByDecreasingPath(t *testing.T) {
	// Worst case: a path with strictly decreasing IDs from one end —
	// rounds grow linearly with n, confirming why this algorithm is only
	// used on small (shattered) components.
	n := 60
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	g := graph.MustNew(n, edges)
	_, res, err := Run(g, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < n/4 {
		t.Fatalf("expected ~linear rounds on adversarial path, got %d", res.Rounds)
	}
	if res.Rounds > 2*n+4 {
		t.Fatalf("rounds %d exceed 2n", res.Rounds)
	}
}

func TestSmallComponentsFastInParallel(t *testing.T) {
	// Many small components are processed simultaneously: rounds track the
	// largest component, not the whole graph.
	g := gen.RandomForest(400, 40, rng.New(4))
	_, res, err := Run(g, congest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 60 {
		t.Fatalf("forest of 40 small trees took %d rounds", res.Rounds)
	}
}
