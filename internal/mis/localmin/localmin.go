// Package localmin implements the deterministic distributed greedy MIS:
// in each two-round iteration, every undecided node whose ID is smaller
// than all undecided neighbors' IDs joins the MIS. Its round complexity is
// bounded by the length of the longest decreasing-ID path, hence by the
// component size — which is exactly why it is the right "deterministic
// algorithm [for] each component ... since each component is small"
// (Section 2.1 of the reproduced paper) once shattering has bounded the
// bad components to O(Δ⁶·log_Δ n) nodes.
package localmin

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// node is the per-vertex state machine.
type node struct {
	status base.Status
	active *base.ActiveSet
}

// Status implements base.Membership.
func (nd *node) Status() base.Status { return nd.status }

// New returns a factory for local-min MIS nodes.
func New() func(v int) congest.Node {
	return func(int) congest.Node {
		return &node{status: base.StatusActive}
	}
}

// Run executes the algorithm on g.
func Run(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
	r := congest.NewRunner(g, New(), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

func (nd *node) Init(ctx *congest.Context) {
	nd.active = base.NewActiveSet(ctx.Neighbors())
	nd.tryJoin(ctx)
}

// tryJoin joins the MIS when this node's ID is the minimum among its
// still-undecided neighborhood. IDs are known to neighbors a priori in
// CONGEST, so no priority exchange is needed — only removal announcements.
func (nd *node) tryJoin(ctx *congest.Context) {
	min := true
	nd.active.Each(func(id int) {
		if id < ctx.ID() {
			min = false
		}
	})
	if min {
		nd.status = base.StatusInMIS
		ctx.Broadcast(proto.Flag{Kind: proto.KindJoined}.Wire())
		ctx.Halt()
	}
}

func (nd *node) Round(ctx *congest.Context, inbox []congest.Message) {
	switch ctx.Round() % 2 {
	case 1: // join announcements
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindJoined {
				nd.status = base.StatusDominated
				ctx.Broadcast(proto.Flag{Kind: proto.KindRemoved}.Wire())
				ctx.Halt()
				return
			}
		}
	case 0: // removal announcements; next iteration
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindRemoved {
				nd.active.Remove(m.From)
			}
		}
		nd.tryJoin(ctx)
	}
}

// ExportState packs the node's observable output (its status) for the
// distributed driver's cross-process state transfer (congest.Porter).
func (nd *node) ExportState() uint64 { return uint64(nd.status) }

// ImportState restores a status packed by ExportState.
func (nd *node) ImportState(x uint64) { nd.status = base.Status(x) }
