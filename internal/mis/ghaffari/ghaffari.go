// Package ghaffari implements the MIS algorithm of Ghaffari (SODA 2016),
// the algorithm the reproduced paper cites as dominating its round
// complexity. Each node maintains an explicit desire-level p(v), initially
// 1/2; in each iteration v marks itself with probability p(v), joins the
// MIS when no neighbor is simultaneously marked, and updates p(v) from the
// aggregate desire of its neighborhood:
//
//	d(v) = Σ_{u ∈ N(v)} p(u)
//	p(v) ← p(v)/2        if d(v) ≥ 2
//	p(v) ← min(2p(v), ½) otherwise
//
// Desire levels are always dyadic, so they travel exactly as 32-bit fixed-
// point values (p·2³⁰). One iteration costs four CONGEST rounds:
//
//	phase 0: process removals; broadcast Desire(p)
//	phase 1: compute d(v); update p; decide mark; broadcast mark flags
//	phase 2: marked nodes with no marked neighbor join and announce
//	phase 3: nodes with a joined neighbor announce removal and halt
package ghaffari

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/mis/proto"
)

// fixedOne is 1.0 in the 2^30 fixed-point scale of proto.Desire.
const fixedOne = uint64(1) << 30

// minP30 floors the desire level at 2⁻³⁰ so it stays representable; in any
// graph this simulator can hold, p never actually falls that far.
const minP30 = uint32(1)

// node is the per-vertex state machine.
type node struct {
	status base.Status
	active *base.ActiveSet
	p30    uint32
	marked bool
}

// Status implements base.Membership.
func (nd *node) Status() base.Status { return nd.status }

// New returns a factory for Ghaffari MIS nodes.
func New() func(v int) congest.Node {
	return func(int) congest.Node {
		return &node{status: base.StatusActive, p30: uint32(fixedOne / 2)}
	}
}

// Run executes the algorithm on g.
func Run(g *graph.Graph, opts congest.Options) ([]base.Status, congest.Result, error) {
	r := congest.NewRunner(g, New(), opts)
	res, err := r.Run()
	if err != nil {
		return nil, res, err
	}
	return base.Statuses(r, g.N()), res, nil
}

func (nd *node) Init(ctx *congest.Context) {
	nd.active = base.NewActiveSet(ctx.Neighbors())
	nd.start(ctx)
}

// start is phase 0: broadcast the current desire level.
func (nd *node) start(ctx *congest.Context) {
	if nd.active.Count() == 0 {
		nd.status = base.StatusInMIS
		ctx.Halt()
		return
	}
	ctx.Broadcast(proto.Desire{P30: nd.p30}.Wire())
}

func (nd *node) Round(ctx *congest.Context, inbox []congest.Message) {
	switch ctx.Round() % 4 {
	case 1: // desires arrived: update p, decide mark
		var sum uint64
		for _, m := range inbox {
			if d, ok := proto.AsDesire(m.Wire); ok {
				sum += uint64(d.P30)
			}
		}
		mark := ctx.RNG().Bool(float64(nd.p30) / float64(fixedOne))
		// Desire update uses this iteration's d(v); the mark decision used
		// this iteration's p, drawn above before the update.
		if sum >= 2*fixedOne {
			nd.p30 /= 2
			if nd.p30 < minP30 {
				nd.p30 = minP30
			}
		} else {
			nd.p30 *= 2
			if nd.p30 > uint32(fixedOne/2) {
				nd.p30 = uint32(fixedOne / 2)
			}
		}
		nd.marked = mark
		if mark {
			ctx.Broadcast(proto.Flag{Kind: proto.KindMarked}.Wire())
		}
	case 2: // marks arrived: unconflicted marked nodes join
		if !nd.marked {
			return
		}
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindMarked {
				return // a neighbor is marked too; nobody joins here
			}
		}
		nd.status = base.StatusInMIS
		ctx.Broadcast(proto.Flag{Kind: proto.KindJoined}.Wire())
		ctx.Halt()
	case 3: // join announcements
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindJoined {
				nd.status = base.StatusDominated
				ctx.Broadcast(proto.Flag{Kind: proto.KindRemoved}.Wire())
				ctx.Halt()
				return
			}
		}
	case 0: // removals arrived: next iteration
		for _, m := range inbox {
			if f, ok := proto.AsFlag(m.Wire); ok && f.Kind == proto.KindRemoved {
				nd.active.Remove(m.From)
			}
		}
		nd.start(ctx)
	}
}

// ExportState packs the node's observable output (its status) for the
// distributed driver's cross-process state transfer (congest.Porter).
func (nd *node) ExportState() uint64 { return uint64(nd.status) }

// ImportState restores a status packed by ExportState.
func (nd *node) ImportState(x uint64) { nd.status = base.Status(x) }
