package ghaffari

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis/base"
	"repro/internal/rng"
)

func TestProducesMISOnFamilies(t *testing.T) {
	r := rng.New(200)
	cases := map[string]*graph.Graph{
		"path":     gen.Path(60),
		"star":     gen.Star(45),
		"tree":     gen.RandomTree(250, r.Split(1)),
		"grid":     gen.Grid(10, 14),
		"gnp":      gen.GNP(120, 0.12, r.Split(2)),
		"union4":   gen.UnionOfTrees(150, 4, r.Split(3)),
		"pa":       gen.PreferentialAttachment(200, 3, r.Split(4)),
		"isolated": graph.MustNew(5, nil),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			statuses, _, err := Run(g, congest.Options{Seed: 21})
			if err != nil {
				t.Fatal(err)
			}
			if err := base.VerifyStatuses(g, statuses); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestManySeeds(t *testing.T) {
	g := gen.UnionOfTrees(100, 3, rng.New(6))
	for seed := uint64(0); seed < 20; seed++ {
		statuses, _, err := Run(g, congest.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := base.VerifyStatuses(g, statuses); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestParallelDriverIdentical(t *testing.T) {
	g := gen.Grid(12, 12)
	seq, seqRes, err := Run(g, congest.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	par, parRes, err := Run(g, congest.Options{Seed: 5, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes != parRes {
		t.Fatalf("stats differ: %+v vs %+v", seqRes, parRes)
	}
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("node %d differs", v)
		}
	}
}

func TestDesireLevelsStayDyadicAndBounded(t *testing.T) {
	// White-box: run manually and inspect p30 values at the end.
	g := gen.GNP(80, 0.15, rng.New(3))
	r := congest.NewRunner(g, New(), congest.Options{Seed: 9})
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		nd := r.Node(v).(*node)
		if nd.p30 == 0 {
			t.Fatalf("node %d desire underflowed to 0", v)
		}
		if nd.p30 > uint32(fixedOne/2) {
			t.Fatalf("node %d desire %d above 1/2", v, nd.p30)
		}
		// Dyadic check: p30 must be a power of two.
		if nd.p30&(nd.p30-1) != 0 {
			t.Fatalf("node %d desire %d not dyadic", v, nd.p30)
		}
	}
}

func TestRoundsReasonable(t *testing.T) {
	// O(log Δ) + shattering tail; generously bounded for the test.
	g := gen.GNP(500, 0.04, rng.New(4))
	_, res, err := Run(g, congest.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 4*200 {
		t.Fatalf("took %d rounds", res.Rounds)
	}
}

func TestMessageSizeSmall(t *testing.T) {
	g := gen.RandomTree(100, rng.New(5))
	_, res, err := Run(g, congest.Options{Seed: 6, MessageBitLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMessageBits > 32 {
		t.Fatalf("max message bits = %d", res.MaxMessageBits)
	}
}

func TestCompleteGraph(t *testing.T) {
	g := gen.GNP(12, 1, rng.New(1))
	statuses, _, err := Run(g, congest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := graph.SetSize(base.MISSet(statuses)); got != 1 {
		t.Fatalf("K12 MIS size %d", got)
	}
}
