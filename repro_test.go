package repro

import (
	"testing"
)

func TestComputeMISQuickstart(t *testing.T) {
	g := UnionOfTrees(500, 2, 42)
	out, err := ComputeMIS(g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, out.MIS); err != nil {
		t.Fatal(err)
	}
	if out.MISSize() == 0 || out.TotalRounds() == 0 {
		t.Fatalf("degenerate outcome: size=%d rounds=%d", out.MISSize(), out.TotalRounds())
	}
}

func TestComputeMISParallelDriver(t *testing.T) {
	g := RandomTree(300, 7)
	out, err := ComputeMIS(g, 1, Options{Seed: 2, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestComputeMISWithPaperParams(t *testing.T) {
	g := UnionOfTrees(200, 2, 9)
	out, err := ComputeMISWithParams(g, PaperParams(2, g.MaxDegree(), 1), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesProduceValidMIS(t *testing.T) {
	g := UnionOfTrees(300, 3, 11)
	type runner func(*Graph, Options) ([]bool, Result, error)
	for name, run := range map[string]runner{
		"metivier": Metivier,
		"lubyA":    LubyA,
		"lubyB":    LubyB,
		"ghaffari": Ghaffari,
	} {
		set, res, err := run(g, Options{Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyMIS(g, set); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Rounds == 0 {
			t.Fatalf("%s: zero rounds", name)
		}
	}
}

func TestColeVishkinViaPublicAPI(t *testing.T) {
	g := RandomTree(200, 13)
	// BFS parents from vertex 0 (tree is connected).
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if parent[w] == -2 {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	set, _, err := ColeVishkin(g, parent, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, set); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsViaPublicAPI(t *testing.T) {
	if g := Grid(5, 8); g.N() != 40 {
		t.Fatal("grid wrong")
	}
	if g := GNP(100, 0.05, 3); g.N() != 100 {
		t.Fatal("gnp wrong")
	}
	g, pts := RandomGeometric(100, 0.2, 4)
	if g.N() != 100 || len(pts) != 100 {
		t.Fatal("rgg wrong")
	}
	if g := PreferentialAttachment(100, 2, 5); g.N() != 100 {
		t.Fatal("pa wrong")
	}
	lo, hi := ArboricityBounds(RandomTree(100, 6))
	if lo != 1 || hi != 1 {
		t.Fatalf("tree arboricity [%d,%d]", lo, hi)
	}
}

func TestNewGraphValidates(t *testing.T) {
	if _, err := NewGraph(2, []Edge{{U: 0, V: 5}}); err == nil {
		t.Fatal("bad edge accepted")
	}
	g, err := NewGraph(3, []Edge{{U: 0, V: 1}})
	if err != nil || g.M() != 1 {
		t.Fatalf("g=%v err=%v", g, err)
	}
}

func TestReadKToolkitViaPublicAPI(t *testing.T) {
	f, err := NewFamily(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add([]int{0, 1}, func(v []uint64) bool { return v[0] > v[1] }); err != nil {
		t.Fatal(err)
	}
	if f.K() != 1 {
		t.Fatalf("K = %d", f.K())
	}
	if b := ConjunctionBound(0.5, 4, 2); b <= 0 || b >= 1 {
		t.Fatalf("bound %v", b)
	}
	if b := TailBound(0.5, 100, 2); b <= 0 || b >= 1 {
		t.Fatalf("tail %v", b)
	}
}

func TestExperimentRegistry(t *testing.T) {
	drivers := Experiments()
	if len(drivers) != 27 {
		t.Fatalf("%d drivers", len(drivers))
	}
	if !QuickExperimentConfig().Quick || FullExperimentConfig().Quick {
		t.Fatal("configs mixed up")
	}
}

func TestComputeMISFullViaPublicAPI(t *testing.T) {
	g := PreferentialAttachment(1000, 3, 17)
	out, err := ComputeMISFull(g, 3, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, out.MIS); err != nil {
		t.Fatal(err)
	}
	if out.ReductionIterations < 1 || out.TotalRounds() < 1 {
		t.Fatalf("degenerate full outcome: %+v", out)
	}
}

func TestComputeMISWithFinisherViaPublicAPI(t *testing.T) {
	g := UnionOfTrees(300, 2, 18)
	params := PracticalParams(2, g.MaxDegree())
	for _, fin := range []BadFinisher{FinisherLocalMin, FinisherForestCV} {
		out, err := ComputeMISWithFinisher(g, params, fin, Options{Seed: 5})
		if err != nil {
			t.Fatalf("finisher %d: %v", fin, err)
		}
		if err := VerifyMIS(g, out.MIS); err != nil {
			t.Fatalf("finisher %d: %v", fin, err)
		}
	}
}

func TestTreeMISViaPublicAPI(t *testing.T) {
	g := RandomTree(300, 19)
	out, err := TreeMIS(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, out.MIS); err != nil {
		t.Fatal(err)
	}
}

func TestMaximalMatchingViaPublicAPI(t *testing.T) {
	g := UnionOfTrees(200, 2, 20)
	partners, res, err := MaximalMatching(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("zero rounds")
	}
	matched := 0
	for v, p := range partners {
		if p == MatchingUnmatched {
			continue
		}
		matched++
		if partners[p] != v {
			t.Fatalf("asymmetric pair (%d,%d)", v, p)
		}
	}
	if matched == 0 {
		t.Fatal("nothing matched")
	}
}
