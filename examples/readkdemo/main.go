// Readkdemo: the read-k inequality toolkit standalone — the analytical
// machinery that is the reproduced paper's actual contribution. It builds
// a read-k family by hand, checks the Gavinsky-Lovett-Saks-Srinivasan
// bounds against Monte-Carlo estimates, and then extracts the paper's
// Event (2) dependency structure from a real graph to show what the ρₖ
// opt-out buys.
//
//	go run ./examples/readkdemo
package main

import (
	"fmt"
	"math"
	"os"

	"repro"
	"repro/internal/graph"
	"repro/internal/readk"
	"repro/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	// Part 1: a hand-built read-3 family. 12 members over 12 base bits,
	// member j = OR of bits j, j+1, j+2 (cyclic): every bit read 3 times.
	const m, k = 12, 3
	fam, err := repro.NewFamily(m)
	if err != nil {
		return err
	}
	for j := 0; j < m; j++ {
		deps := []int{j, (j + 1) % m, (j + 2) % m}
		if err := fam.Add(deps, func(vals []uint64) bool {
			return vals[0]&1 == 1 || vals[1]&1 == 1 || vals[2]&1 == 1
		}); err != nil {
			return err
		}
	}
	fmt.Printf("family: %d members over %d base bits, measured read parameter K = %d\n", fam.N(), fam.M(), fam.K())

	exactAll, means := fam.ExactBinary()
	p := means[0]
	readkBound := repro.ConjunctionBound(p, fam.N(), fam.K())
	indep := math.Pow(p, float64(fam.N()))
	fmt.Printf("Pr[every member = 1]: exact %.4f\n", exactAll)
	fmt.Printf("  read-k bound p^(n/k) = %.4f  (holds: %v)\n", readkBound, exactAll <= readkBound)
	fmt.Printf("  naive independence pⁿ = %.4f (violated: %v — this is why read-k inequalities exist)\n",
		indep, exactAll > indep)

	mc, err := fam.Estimate(rng.New(1), 200000)
	if err != nil {
		return err
	}
	expY := mc.ExpectedSum()
	delta := 0.25
	emp := mc.TailLE(int((1 - delta) * expY))
	fmt.Printf("lower tail Pr[Y ≤ %.1f]: empirical %.5f, Theorem 1.2 bound %.5f\n",
		(1-delta)*expY, emp, repro.TailBound(delta, expY, fam.K()))

	// Part 2: Event (2) from the paper on a real heavy-tailed graph — the
	// read parameter with and without the ρₖ opt-out.
	g := repro.PreferentialAttachment(2000, 3, 7)
	o, d := orient(g)
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	_, kCapped, err := readk.Event2Family(o, all, 16)
	if err != nil {
		return err
	}
	_, kOpen, err := readk.Event2Family(o, all, 1<<30)
	if err != nil {
		return err
	}
	fmt.Printf("\nEvent (2) on a PA graph (n=%d, Δ=%d, orientation out-degree ≤ %d):\n", g.N(), g.MaxDegree(), d)
	fmt.Printf("  read parameter with ρ=16 opt-out: K = %d\n", kCapped)
	fmt.Printf("  read parameter without opt-out:   K = %d (a hub read by all its children)\n", kOpen)
	fmt.Println("the opt-out is exactly what makes the paper's Theorem 3.2 tail bound applicable")
	return nil
}

// orient builds the degeneracy orientation the analysis quantifies over.
func orient(g *repro.Graph) (*graph.Orientation, int) {
	return g.OrientByDegeneracy()
}
