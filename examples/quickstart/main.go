// Quickstart: generate a bounded-arboricity graph, run the paper's ArbMIS
// pipeline, verify the result, and compare against Luby's algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	// An arboricity-3 graph: the union of three random spanning trees.
	const n, alpha = 4096, 3
	g := repro.UnionOfTrees(n, alpha, 42)
	lo, hi := repro.ArboricityBounds(g)
	fmt.Printf("graph: %d vertices, %d edges, max degree %d, arboricity in [%d,%d]\n",
		g.N(), g.M(), g.MaxDegree(), lo, hi)

	// The paper's algorithm, with goroutine-per-node execution.
	out, err := repro.ComputeMIS(g, alpha, repro.Options{Seed: 1, Parallel: true})
	if err != nil {
		return err
	}
	fmt.Printf("ArbMIS:   |MIS| = %d in %d CONGEST rounds (%d messages, max %d bits/message)\n",
		out.MISSize(), out.TotalRounds(), out.TotalMessages(), out.MaxMessageBits())

	// The classical O(log n) baseline on the same graph.
	set, res, err := repro.LubyB(g, repro.Options{Seed: 1})
	if err != nil {
		return err
	}
	if err := repro.VerifyMIS(g, set); err != nil {
		return err
	}
	size := 0
	for _, in := range set {
		if in {
			size++
		}
	}
	fmt.Printf("Luby B:   |MIS| = %d in %d CONGEST rounds (%d messages)\n", size, res.Rounds, res.Messages)

	// Both outputs are verified maximal independent sets; they generally
	// differ — MIS is not unique.
	fmt.Println("both results verified: independent and maximal")
	return nil
}
