// Sensornet: cluster-head election in a wireless sensor deployment — the
// classic application that motivates distributed MIS. Sensors scattered in
// the unit square hear each other within a fixed radio radius (a random
// geometric graph, which has bounded arboricity at this density); an MIS of
// the communication graph is exactly a set of cluster heads such that no
// two heads interfere and every sensor hears at least one head.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"math"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		sensors = 2000
		radius  = 0.05 // radio range in unit-square coordinates
	)
	g, pts := repro.RandomGeometric(sensors, radius, 7)
	lo, hi := repro.ArboricityBounds(g)
	fmt.Printf("deployment: %d sensors, %d links, max degree %d, arboricity in [%d,%d]\n",
		g.N(), g.M(), g.MaxDegree(), lo, hi)

	out, err := repro.ComputeMIS(g, hi, repro.Options{Seed: 3})
	if err != nil {
		return err
	}
	fmt.Printf("elected %d cluster heads in %d radio rounds\n", out.MISSize(), out.TotalRounds())

	// Every sensor is a head or within radio range of one (that is
	// maximality); heads never interfere (independence). Measure the
	// geometric quality: distance from each non-head to its nearest head.
	var worst, sum float64
	count := 0
	for v := range pts {
		if out.MIS[v] {
			continue
		}
		best := math.Inf(1)
		for _, w := range g.Neighbors(v) {
			if !out.MIS[w] {
				continue
			}
			dx := pts[v][0] - pts[w][0]
			dy := pts[v][1] - pts[w][1]
			if d := math.Hypot(dx, dy); d < best {
				best = d
			}
		}
		if math.IsInf(best, 1) {
			// Isolated sensors are their own heads; the verifier below
			// would have caught a genuinely uncovered sensor.
			continue
		}
		sum += best
		count++
		if best > worst {
			worst = best
		}
	}
	if count > 0 {
		fmt.Printf("coverage: mean head distance %.4f, worst %.4f (radio range %.2f)\n",
			sum/float64(count), worst, radius)
	}
	if err := repro.VerifyMIS(g, out.MIS); err != nil {
		return err
	}
	fmt.Println("verified: no two heads interfere; every sensor hears a head")
	return nil
}
