// Treenetwork: the oriented-vs-unoriented contrast from the paper's
// introduction. On a *consistently oriented* tree (every node knows its
// parent), the deterministic Cole-Vishkin pipeline computes an MIS in
// O(log* n) rounds — essentially constant. On an *unoriented* tree the best
// known algorithms are randomized; this example runs both on the same
// topology and prints the gap.
//
//	go run ./examples/treenetwork
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, n := range []int{1 << 8, 1 << 12, 1 << 16} {
		g := repro.RandomTree(n, uint64(n))

		// Oriented case: root at vertex 0, BFS parents.
		parent := bfsParents(g, 0)
		cvSet, cvRes, err := repro.ColeVishkin(g, parent, repro.Options{Seed: 1})
		if err != nil {
			return err
		}
		if err := repro.VerifyMIS(g, cvSet); err != nil {
			return err
		}

		// Unoriented case: randomized Métivier (the engine inside the
		// paper's algorithm), which never looks at the orientation.
		metSet, metRes, err := repro.Metivier(g, repro.Options{Seed: 1})
		if err != nil {
			return err
		}
		if err := repro.VerifyMIS(g, metSet); err != nil {
			return err
		}

		fmt.Printf("n=%-7d oriented Cole-Vishkin: %2d rounds (deterministic)   unoriented Métivier: %2d rounds (randomized)\n",
			n, cvRes.Rounds, metRes.Rounds)
	}
	fmt.Println("\nCole-Vishkin's rounds are flat (log* n); the randomized side grows with log n.")
	fmt.Println("The reproduced paper extends the unoriented-tree machinery to arboricity-α graphs.")
	return nil
}

// bfsParents roots the tree at src.
func bfsParents(g *repro.Graph, src int) []int {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -2
	}
	parent[src] = -1
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if parent[w] == -2 {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return parent
}
