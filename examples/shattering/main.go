// Shattering: a phase-by-phase walkthrough of the paper's pipeline on a
// heavy-tailed graph. It runs Algorithm 1 under a stressed parameter
// profile (so the bad set actually populates at this scale), prints the
// per-scale Invariant data, the component structure of G[B] (Lemma 3.7's
// shattering), and the finishing stages' costs.
//
//	go run ./examples/shattering
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/mis/base"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	const n, alpha = 8192, 3
	// Heavy-tailed degrees: preferential attachment with out-degree α.
	g := repro.PreferentialAttachment(n, alpha, 11)
	fmt.Printf("graph: n=%d m=%d Δ=%d (heavy-tailed)\n", g.N(), g.M(), g.MaxDegree())

	// Stress the profile: one iteration per scale and a 4× stricter bad
	// test, so nodes actually get expelled to B.
	params := repro.PracticalParams(alpha, g.MaxDegree())
	params.Iterations = 1
	for k := 1; k <= params.NumScales; k++ {
		params.SetBadLimit(k, params.BadLimit(k)/4)
	}
	fmt.Printf("params: Θ=%d scales, Λ=%d iteration/scale (stressed)\n\n", params.NumScales, params.Iterations)

	out, err := repro.ComputeMISWithParams(g, params, repro.Options{Seed: 5})
	if err != nil {
		return err
	}

	// Phase 1: the shattering stage.
	alg1 := out.Alg1
	fmt.Printf("phase 1 (BoundedArbIndependentSet): %d rounds\n", out.Stages[0].Result.Rounds)
	fmt.Printf("  joined I:  %5d\n", alg1.CountStatus(base.StatusInMIS))
	fmt.Printf("  dominated: %5d\n", alg1.CountStatus(base.StatusDominated))
	fmt.Printf("  bad (B):   %5d\n", alg1.CountStatus(base.StatusBad))
	fmt.Printf("  deferred:  %5d\n\n", alg1.CountStatus(base.StatusActive))

	// The Invariant, per scale: worst surviving high-degree-neighbor count.
	fmt.Println("Invariant per scale (max high-degree neighbors among survivors vs bound):")
	for k := 1; k <= params.NumScales; k++ {
		worst, bound, seen := 0, 0, false
		for v, tr := range alg1.Traces {
			if alg1.Statuses[v] == base.StatusBad && len(tr) == k {
				continue // expelled at this scale
			}
			for _, rec := range tr {
				if rec.Scale == k {
					seen = true
					bound = rec.Bound
					if rec.HighDegNbrs > worst {
						worst = rec.HighDegNbrs
					}
				}
			}
		}
		if seen {
			fmt.Printf("  scale %d: max=%d bound=%d\n", k, worst, bound)
		}
	}

	// Phase 2: shattering structure of G[B].
	fmt.Printf("\nLemma 3.7 shattering: G[B] has %d components", len(out.BadComponentSizes))
	if len(out.BadComponentSizes) > 0 {
		fmt.Printf(", largest %d of n=%d", out.BadComponentSizes[0], n)
	}
	fmt.Println()

	// Phase 3: the finishing stages.
	fmt.Println("\nfinishing stages:")
	for _, s := range out.Stages[1:] {
		fmt.Printf("  %-4s nodes=%-6d rounds=%d\n", s.Name, s.Nodes, s.Result.Rounds)
	}
	fmt.Printf("\nfinal: |MIS|=%d, %d total rounds — verified maximal independent set\n",
		out.MISSize(), out.TotalRounds())
	return nil
}
