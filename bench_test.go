package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/distrib"
	"repro/internal/exp"
)

// TestMain lets this test binary double as the misnode worker: the E21
// benchmark spawns self-exec fleets, which re-run the binary with the
// worker socket in the environment.
func TestMain(m *testing.M) {
	distrib.MaybeWorker()
	os.Exit(m.Run())
}

// One benchmark per experiment in DESIGN.md's index. Each runs the driver
// at test size (cmd/bench runs the full sweeps) and reports the wall cost
// of regenerating the table. `go test -bench=. -benchmem` therefore touches
// every table and figure of EXPERIMENTS.md.

func benchDriver(b *testing.B, id string) {
	b.Helper()
	var driver *exp.Driver
	for _, d := range exp.All() {
		if d.ID == id {
			d := d
			driver = &d
			break
		}
	}
	if driver == nil {
		b.Fatalf("no driver %s", id)
	}
	cfg := exp.QuickConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := driver.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Table.NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1RoundsVsN(b *testing.B)          { benchDriver(b, "E1") }
func BenchmarkE2RoundsVsArboricity(b *testing.B) { benchDriver(b, "E2") }
func BenchmarkE3BadNodeProbability(b *testing.B) { benchDriver(b, "E3") }
func BenchmarkE4Shattering(b *testing.B)         { benchDriver(b, "E4") }
func BenchmarkE5Invariant(b *testing.B)          { benchDriver(b, "E5") }
func BenchmarkE6ConjunctionBound(b *testing.B)   { benchDriver(b, "E6") }
func BenchmarkE7TailBound(b *testing.B)          { benchDriver(b, "E7") }
func BenchmarkE8Events(b *testing.B)             { benchDriver(b, "E8") }
func BenchmarkE9MessageSize(b *testing.B)        { benchDriver(b, "E9") }
func BenchmarkE10ColeVishkin(b *testing.B)       { benchDriver(b, "E10") }
func BenchmarkE11ForestDecomp(b *testing.B)      { benchDriver(b, "E11") }
func BenchmarkE12Comparison(b *testing.B)        { benchDriver(b, "E12") }
func BenchmarkE13DegreeReduction(b *testing.B)   { benchDriver(b, "E13") }
func BenchmarkE14RoundDecay(b *testing.B)        { benchDriver(b, "E14") }
func BenchmarkE15Matching(b *testing.B)          { benchDriver(b, "E15") }
func BenchmarkE16FaultTolerance(b *testing.B)    { benchDriver(b, "E16") }
func BenchmarkE17TraceOverhead(b *testing.B)     { benchDriver(b, "E17") }
func BenchmarkE18AllocProfile(b *testing.B)      { benchDriver(b, "E18") }
func BenchmarkE19MulticoreScaling(b *testing.B)  { benchDriver(b, "E19") }
func BenchmarkE20DynamicUpdates(b *testing.B)    { benchDriver(b, "E20") }
func BenchmarkE21DistributedDriver(b *testing.B) { benchDriver(b, "E21") }
func BenchmarkA1RhoOptOut(b *testing.B)          { benchDriver(b, "A1") }
func BenchmarkA2ParamProfiles(b *testing.B)      { benchDriver(b, "A2") }
func BenchmarkA3ScaleSensitivity(b *testing.B)   { benchDriver(b, "A3") }
func BenchmarkA4Reliability(b *testing.B)        { benchDriver(b, "A4") }
func BenchmarkA5BadFinisher(b *testing.B)        { benchDriver(b, "A5") }

// Micro-benchmarks: single-algorithm runs on a fixed graph, reporting
// CONGEST rounds alongside wall time.

func benchAlgo(b *testing.B, run func(*Graph, Options) ([]bool, Result, error)) {
	b.Helper()
	g := UnionOfTrees(1<<12, 3, 99)
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := run(g, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkAlgoMetivier(b *testing.B) { benchAlgo(b, Metivier) }
func BenchmarkAlgoLubyA(b *testing.B)    { benchAlgo(b, LubyA) }
func BenchmarkAlgoLubyB(b *testing.B)    { benchAlgo(b, LubyB) }
func BenchmarkAlgoGhaffari(b *testing.B) { benchAlgo(b, Ghaffari) }

func BenchmarkAlgoArbMIS(b *testing.B) {
	g := UnionOfTrees(1<<12, 3, 99)
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ComputeMIS(g, 3, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = out.TotalRounds()
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// benchEngineDriver runs Métivier MIS under one engine driver, reporting
// ns/round so drivers are comparable even if round counts drift with seed.
func benchEngineDriver(b *testing.B, g *Graph, opts Options) {
	b.Helper()
	var rounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i)
		_, res, err := Metivier(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		rounds += int64(res.Rounds)
	}
	b.StopTimer()
	if rounds > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(rounds), "ns/round")
	}
}

// BenchmarkEngineDrivers compares the three execution strategies on the
// same workload at the n = 2^14 scale where scheduler overhead separates
// them: the sharded worker pool must beat the legacy goroutine-per-vertex
// driver's ns/round (see BENCH_congest.json for the recorded trajectory).
func BenchmarkEngineDrivers(b *testing.B) {
	for _, n := range []int{1 << 11, 1 << 14} {
		g := UnionOfTrees(n, 2, 7)
		b.Run(fmt.Sprintf("n=%d/sequential", n), func(b *testing.B) {
			benchEngineDriver(b, g, Options{Driver: DriverSequential})
		})
		b.Run(fmt.Sprintf("n=%d/pool", n), func(b *testing.B) {
			benchEngineDriver(b, g, Options{Driver: DriverPool})
		})
		b.Run(fmt.Sprintf("n=%d/goroutine-per-vertex", n), func(b *testing.B) {
			benchEngineDriver(b, g, Options{Driver: DriverGoroutinePerVertex})
		})
	}
}
