package repro

import (
	"testing"

	"repro/internal/exp"
)

// One benchmark per experiment in DESIGN.md's index. Each runs the driver
// at test size (cmd/bench runs the full sweeps) and reports the wall cost
// of regenerating the table. `go test -bench=. -benchmem` therefore touches
// every table and figure of EXPERIMENTS.md.

func benchDriver(b *testing.B, id string) {
	b.Helper()
	var driver *exp.Driver
	for _, d := range exp.All() {
		if d.ID == id {
			d := d
			driver = &d
			break
		}
	}
	if driver == nil {
		b.Fatalf("no driver %s", id)
	}
	cfg := exp.QuickConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := driver.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Table.NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1RoundsVsN(b *testing.B)          { benchDriver(b, "E1") }
func BenchmarkE2RoundsVsArboricity(b *testing.B) { benchDriver(b, "E2") }
func BenchmarkE3BadNodeProbability(b *testing.B) { benchDriver(b, "E3") }
func BenchmarkE4Shattering(b *testing.B)         { benchDriver(b, "E4") }
func BenchmarkE5Invariant(b *testing.B)          { benchDriver(b, "E5") }
func BenchmarkE6ConjunctionBound(b *testing.B)   { benchDriver(b, "E6") }
func BenchmarkE7TailBound(b *testing.B)          { benchDriver(b, "E7") }
func BenchmarkE8Events(b *testing.B)             { benchDriver(b, "E8") }
func BenchmarkE9MessageSize(b *testing.B)        { benchDriver(b, "E9") }
func BenchmarkE10ColeVishkin(b *testing.B)       { benchDriver(b, "E10") }
func BenchmarkE11ForestDecomp(b *testing.B)      { benchDriver(b, "E11") }
func BenchmarkE12Comparison(b *testing.B)        { benchDriver(b, "E12") }
func BenchmarkE13DegreeReduction(b *testing.B)   { benchDriver(b, "E13") }
func BenchmarkE14RoundDecay(b *testing.B)        { benchDriver(b, "E14") }
func BenchmarkE15Matching(b *testing.B)          { benchDriver(b, "E15") }
func BenchmarkA1RhoOptOut(b *testing.B)          { benchDriver(b, "A1") }
func BenchmarkA2ParamProfiles(b *testing.B)      { benchDriver(b, "A2") }
func BenchmarkA3ScaleSensitivity(b *testing.B)   { benchDriver(b, "A3") }
func BenchmarkA4Reliability(b *testing.B)        { benchDriver(b, "A4") }
func BenchmarkA5BadFinisher(b *testing.B)        { benchDriver(b, "A5") }

// Micro-benchmarks: single-algorithm runs on a fixed graph, reporting
// CONGEST rounds alongside wall time.

func benchAlgo(b *testing.B, run func(*Graph, Options) ([]bool, Result, error)) {
	b.Helper()
	g := UnionOfTrees(1<<12, 3, 99)
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := run(g, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkAlgoMetivier(b *testing.B) { benchAlgo(b, Metivier) }
func BenchmarkAlgoLubyA(b *testing.B)    { benchAlgo(b, LubyA) }
func BenchmarkAlgoLubyB(b *testing.B)    { benchAlgo(b, LubyB) }
func BenchmarkAlgoGhaffari(b *testing.B) { benchAlgo(b, Ghaffari) }

func BenchmarkAlgoArbMIS(b *testing.B) {
	g := UnionOfTrees(1<<12, 3, 99)
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ComputeMIS(g, 3, Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = out.TotalRounds()
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkEngineSequentialVsParallel(b *testing.B) {
	g := UnionOfTrees(1<<11, 2, 7)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Metivier(g, Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("goroutine-per-node", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Metivier(g, Options{Seed: uint64(i), Parallel: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
