// Package repro is the public API of this reproduction of Pemmaraju &
// Riaz, "Using Read-k Inequalities to Analyze a Distributed MIS Algorithm"
// (PODC 2016). It re-exports the pieces a downstream user needs:
//
//   - ComputeMIS: the paper's ArbMIS pipeline (Algorithm 1 + Algorithm 2)
//     on any graph, parameterized by an arboricity bound;
//   - the baseline MIS algorithms the paper discusses (Luby A/B, Métivier,
//     Ghaffari, Cole-Vishkin on forests);
//   - graph generators for the bounded-arboricity families the paper
//     targets;
//   - the read-k inequality toolkit (Gavinsky et al. bounds and family
//     analysis);
//   - the experiment drivers that regenerate every table in EXPERIMENTS.md.
//
// Everything runs on the in-repo CONGEST simulator: pass Options{Parallel:
// true} to execute on the sharded worker-pool driver (one worker per CPU,
// each owning a contiguous vertex shard), which is bit-identical to the
// sequential driver for the same seed.
package repro

import (
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis/base"
	"repro/internal/mis/colevishkin"
	"repro/internal/mis/ghaffari"
	"repro/internal/mis/luby"
	"repro/internal/mis/metivier"
	"repro/internal/mis/tree"
	"repro/internal/readk"
	"repro/internal/rng"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Graph is an immutable simple undirected graph.
	Graph = graph.Graph
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Options configures a CONGEST run (seed, driver, limits).
	Options = congest.Options
	// Result carries round/message accounting for one run.
	Result = congest.Result
	// Params are the knobs of the paper's Algorithm 1.
	Params = core.Params
	// Outcome is the full result of an ArbMIS run.
	Outcome = core.Outcome
	// Status classifies a node after a run.
	Status = base.Status
	// DriverKind selects the engine execution strategy (see the Driver*
	// constants).
	DriverKind = congest.DriverKind
	// DriverStats aggregates the worker-pool driver's efficiency metrics;
	// plug its Observe method into Options.PoolObserver.
	DriverStats = congest.DriverStats
	// Family is a read-k family of boolean variables.
	Family = readk.Family
	// Report is a regenerated experiment table.
	Report = exp.Report
	// ExpConfig sizes an experiment sweep.
	ExpConfig = exp.Config
)

// Node statuses.
const (
	StatusInMIS     = base.StatusInMIS
	StatusDominated = base.StatusDominated
)

// Engine drivers. Options{Parallel: true} selects DriverPool; set
// Options.Driver for an explicit choice.
const (
	// DriverSequential sweeps vertices in ID order on one goroutine.
	DriverSequential = congest.DriverSequential
	// DriverPool is the sharded worker-pool driver (GOMAXPROCS workers by
	// default; override with Options.Workers).
	DriverPool = congest.DriverPool
	// DriverGoroutinePerVertex is the legacy one-goroutine-per-node
	// driver, kept as a benchmark baseline.
	DriverGoroutinePerVertex = congest.DriverGoroutinePerVertex
)

// NewGraph builds a graph on n vertices from an edge list (self-loops and
// out-of-range endpoints rejected, duplicates merged).
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.New(n, edges) }

// ComputeMIS runs the paper's full ArbMIS pipeline with the practical
// parameter profile for the given arboricity bound. The returned outcome's
// MIS field is verified before return.
func ComputeMIS(g *Graph, alpha int, opts Options) (*Outcome, error) {
	return core.ArbMIS(g, core.PracticalParams(alpha, g.MaxDegree()), opts)
}

// ComputeMISWithParams runs ArbMIS under explicit parameters (e.g.
// PaperParams for the printed constants, or a modified profile for
// ablations).
func ComputeMISWithParams(g *Graph, params *Params, opts Options) (*Outcome, error) {
	return core.ArbMIS(g, params, opts)
}

// FullOutcome is the result of the complete §3.3 pipeline, including the
// degree-reduction preprocessing.
type FullOutcome = core.FullOutcome

// ComputeMISFull runs the paper's complete recipe: degree-reduction
// preprocessing (O(√(log n·log log n)) priority iterations), then ArbMIS
// on the surviving subgraph with parameters rebuilt for the reduced Δ.
func ComputeMISFull(g *Graph, alpha int, opts Options) (*FullOutcome, error) {
	return core.ArbMISFull(g, alpha, 1, opts)
}

// BadFinisher selects the deterministic algorithm for the shattered bad
// components in ComputeMISWithFinisher.
type BadFinisher = core.BadFinisher

// Bad-component finisher choices.
const (
	// FinisherLocalMin is the local-minimum-ID sweep (default in
	// ComputeMIS).
	FinisherLocalMin = core.FinisherLocalMin
	// FinisherForestCV is the paper's Lemma 3.8 pipeline: forest
	// decomposition plus per-forest Cole-Vishkin colorings.
	FinisherForestCV = core.FinisherForestCV
)

// ComputeMISWithFinisher is ComputeMISWithParams with an explicit choice
// of bad-component finisher.
func ComputeMISWithFinisher(g *Graph, params *Params, finisher BadFinisher, opts Options) (*Outcome, error) {
	return core.ArbMISWithFinisher(g, params, finisher, opts)
}

// PracticalParams returns the laptop-scale parameter profile for Algorithm 1.
func PracticalParams(alpha, delta int) *Params { return core.PracticalParams(alpha, delta) }

// PaperParams returns the paper's literal parameter values.
func PaperParams(alpha, delta, p int) *Params { return core.PaperParams(alpha, delta, p) }

// VerifyMIS checks independence and maximality of a vertex set.
func VerifyMIS(g *Graph, inSet []bool) error { return g.VerifyMIS(inSet) }

// Baseline algorithms. Each returns the membership vector, run statistics,
// and an error only on engine misuse (never on unlucky randomness).

// Metivier runs the Métivier et al. priority MIS (O(log n) rounds whp).
func Metivier(g *Graph, opts Options) ([]bool, Result, error) {
	st, res, err := metivier.Run(g, opts)
	return misSet(st), res, err
}

// LubyA runs Luby's Algorithm A (integer priorities from {0..n⁴-1}).
func LubyA(g *Graph, opts Options) ([]bool, Result, error) {
	st, res, err := luby.RunA(g, opts)
	return misSet(st), res, err
}

// LubyB runs Luby's Algorithm B (mark with probability 1/2d(v)).
func LubyB(g *Graph, opts Options) ([]bool, Result, error) {
	st, res, err := luby.RunB(g, opts)
	return misSet(st), res, err
}

// Ghaffari runs Ghaffari's desire-level MIS (SODA 2016).
func Ghaffari(g *Graph, opts Options) ([]bool, Result, error) {
	st, res, err := ghaffari.Run(g, opts)
	return misSet(st), res, err
}

// ColeVishkin runs the deterministic O(log* n) pipeline on a rooted forest;
// parent[v] is v's parent or -1 for roots.
func ColeVishkin(g *Graph, parent []int, opts Options) ([]bool, Result, error) {
	st, res, err := colevishkin.Run(g, parent, opts)
	return misSet(st), res, err
}

// TreeMIS runs the Barenboim-Elkin-Pettie-Schneider TreeIndependentSet
// pipeline (the algorithm the paper generalizes) on a forest, with
// laptop-scale parameters.
func TreeMIS(g *Graph, opts Options) (*Outcome, error) {
	return tree.Run(g, tree.PracticalParams(g.MaxDegree()), opts)
}

// MatchingUnmatched marks a node with no partner in MaximalMatching's
// result.
const MatchingUnmatched = matching.Unmatched

// MaximalMatching computes a maximal matching (Israeli-Itai style, the
// sibling primitive the paper's introduction credits alongside Luby):
// result[v] is v's partner or MatchingUnmatched. The matching is verified
// before return.
func MaximalMatching(g *Graph, opts Options) ([]int, Result, error) {
	return matching.Run(g, opts)
}

func misSet(st []base.Status) []bool {
	if st == nil {
		return nil
	}
	return base.MISSet(st)
}

// Generators. All are deterministic in the seed.

// RandomTree returns a uniform labeled tree on n vertices (arboricity 1).
func RandomTree(n int, seed uint64) *Graph { return gen.RandomTree(n, rng.New(seed)) }

// UnionOfTrees returns the union of alpha random spanning trees
// (arboricity ≤ alpha) — the paper's workhorse bounded-arboricity family.
func UnionOfTrees(n, alpha int, seed uint64) *Graph {
	return gen.UnionOfTrees(n, alpha, rng.New(seed))
}

// Grid returns the rows×cols planar grid (arboricity 2).
func Grid(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, seed uint64) *Graph { return gen.GNP(n, p, rng.New(seed)) }

// RandomGeometric returns a unit-square random geometric graph and its
// point coordinates (the sensor-network family).
func RandomGeometric(n int, radius float64, seed uint64) (*Graph, [][2]float64) {
	return gen.RandomGeometric(n, radius, rng.New(seed))
}

// PreferentialAttachment returns a Barabási–Albert graph with out-degree m
// (arboricity ≤ m, heavy-tailed degrees).
func PreferentialAttachment(n, m int, seed uint64) *Graph {
	return gen.PreferentialAttachment(n, m, rng.New(seed))
}

// ArboricityBounds estimates the arboricity of g: a Nash-Williams density
// lower bound and a degeneracy upper bound.
func ArboricityBounds(g *Graph) (lower, upper int) { return g.ArboricityBounds() }

// Read-k toolkit.

// NewFamily creates an empty read-k family over m base variables.
func NewFamily(m int) (*Family, error) { return readk.NewFamily(m) }

// ConjunctionBound is the paper's Theorem 1.1: Pr[all Y = 1] ≤ p^(n/k).
func ConjunctionBound(p float64, n, k int) float64 { return readk.ConjunctionBound(p, n, k) }

// TailBound is the paper's Theorem 1.2 form (2):
// Pr[Y ≤ (1-δ)E[Y]] ≤ exp(-δ²E[Y]/2k).
func TailBound(delta, expY float64, k int) float64 { return readk.TailForm2(delta, expY, k) }

// Experiments returns the drivers that regenerate every experiment table;
// see EXPERIMENTS.md for the index.
func Experiments() []exp.Driver { return exp.All() }

// QuickExperimentConfig returns a test-sized experiment configuration;
// FullExperimentConfig the full sweeps used by cmd/bench.
func QuickExperimentConfig() ExpConfig { return exp.QuickConfig() }

// FullExperimentConfig returns the full-size experiment configuration.
func FullExperimentConfig() ExpConfig { return exp.DefaultConfig() }
