// Command graphgen emits a generated graph as an edge list ("n m" header,
// one "u v" line per edge) on stdout — the format cmd/arbmis -stdin reads.
//
// Usage:
//
//	graphgen -family union -n 1024 -alpha 3 -seed 7 > graph.edges
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	os.Exit(run())
}

func run() int {
	family := flag.String("family", "union", "graph family: tree|union|grid|gnp|pa|rgg")
	n := flag.Int("n", 1024, "number of vertices")
	alpha := flag.Int("alpha", 2, "arboricity parameter (union/pa)")
	p := flag.Float64("p", 0.01, "edge probability (gnp) / radius (rgg)")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	var g *repro.Graph
	switch *family {
	case "tree":
		g = repro.RandomTree(*n, *seed)
	case "union":
		g = repro.UnionOfTrees(*n, *alpha, *seed)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = repro.Grid(side, side)
	case "gnp":
		g = repro.GNP(*n, *p, *seed)
	case "pa":
		g = repro.PreferentialAttachment(*n, *alpha, *seed)
	case "rgg":
		g, _ = repro.RandomGeometric(*n, *p, *seed)
	default:
		fmt.Fprintf(os.Stderr, "error: unknown family %q\n", *family)
		return 1
	}
	if err := g.WriteEdgeList(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	return 0
}
