// Command graphgen emits a generated graph as an edge list ("n m" header,
// one "u v" line per edge) on stdout — the format cmd/arbmis -stdin reads.
//
// Usage:
//
//	graphgen -family union -n 1024 -alpha 3 -seed 7 > graph.edges
//
// With -stream the command instead emits a seeded replayable update
// stream for the dynamic-MIS engine (internal/dynmis) as JSONL: a header
// line carrying the base-graph parameters and stream knobs, then one line
// per batch. The header makes the file self-describing — replaying it
// needs nothing but the file:
//
//	graphgen -family union -n 4096 -alpha 3 -seed 7 \
//	    -stream -stream-batches 64 -stream-batch-size 16 \
//	    -stream-locality 0.2 -stream-churn 0.05 -stream-seed 11 > u.stream
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/dynmis"
	"repro/internal/graph"
	"repro/internal/layout"
	"repro/internal/rng"
)

func main() {
	os.Exit(run())
}

// families lists the accepted -family values (kept in the usage string).
const families = "tree|union|grid|gnp|pa|rgg"

// usageError reports a bad flag combination on stderr together with the
// flag summary, and returns the exit code.
func usageError(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "error: "+format+"\n", args...)
	flag.Usage()
	return 2
}

func run() int {
	family := flag.String("family", "union", "graph family: "+families)
	n := flag.Int("n", 1024, "number of vertices")
	alpha := flag.Int("alpha", 2, "arboricity parameter (union/pa)")
	p := flag.Float64("p", 0.01, "edge probability (gnp) / radius (rgg)")
	seed := flag.Uint64("seed", 1, "generator seed")
	layoutName := flag.String("layout", "", "relabel vertices before output: identity|degsort|bfs (default identity)")
	stream := flag.Bool("stream", false, "emit a JSONL update stream for the generated graph instead of an edge list")
	streamBatches := flag.Int("stream-batches", 64, "update batches to generate (with -stream)")
	streamBatchSize := flag.Int("stream-batch-size", 16, "updates per batch (with -stream)")
	streamLocality := flag.Float64("stream-locality", 0.0, "probability in [0,1] an update targets a recently-touched vertex (with -stream)")
	streamChurn := flag.Float64("stream-churn", 0.0, "probability in [0,1] an update is node churn (with -stream)")
	streamSeed := flag.Uint64("stream-seed", 1, "update-stream generator seed (with -stream)")
	flag.Parse()

	// Validate before generating: the generators assume sane parameters and
	// a bad flag must produce a usage message, not a panic or empty output.
	if *n <= 0 {
		return usageError("-n must be positive, got %d", *n)
	}
	ordering, err := layout.Parse(*layoutName)
	if err != nil {
		return usageError("%v", err)
	}
	if *stream && ordering != layout.Identity {
		// A stream header replays the base graph from its generator
		// parameters alone; a relabeled base would not be reconstructible.
		return usageError("-layout cannot be combined with -stream")
	}
	if *alpha < 1 && (*family == "union" || *family == "pa") {
		return usageError("-alpha must be at least 1 for -family %s, got %d", *family, *alpha)
	}
	if (*p < 0 || *p > 1) && *family == "gnp" {
		return usageError("-p must be a probability in [0,1] for -family gnp, got %v", *p)
	}
	if *p < 0 && *family == "rgg" {
		return usageError("-p (radius) must be non-negative for -family rgg, got %v", *p)
	}
	if !*stream {
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-stream-batches", *streamBatches != 64},
			{"-stream-batch-size", *streamBatchSize != 16},
			{"-stream-locality", *streamLocality != 0},
			{"-stream-churn", *streamChurn != 0},
			{"-stream-seed", *streamSeed != 1},
		} {
			if f.set {
				return usageError("%s requires -stream", f.name)
			}
		}
	}
	if *stream {
		if *streamBatches <= 0 {
			return usageError("-stream-batches must be positive, got %d", *streamBatches)
		}
		if *streamBatchSize <= 0 {
			return usageError("-stream-batch-size must be positive, got %d", *streamBatchSize)
		}
		if *streamLocality < 0 || *streamLocality > 1 {
			return usageError("-stream-locality must be in [0,1], got %v", *streamLocality)
		}
		if *streamChurn < 0 || *streamChurn > 1 {
			return usageError("-stream-churn must be in [0,1], got %v", *streamChurn)
		}
	}

	var g *repro.Graph
	switch *family {
	case "tree":
		g = repro.RandomTree(*n, *seed)
	case "union":
		g = repro.UnionOfTrees(*n, *alpha, *seed)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = repro.Grid(side, side)
	case "gnp":
		g = repro.GNP(*n, *p, *seed)
	case "pa":
		g = repro.PreferentialAttachment(*n, *alpha, *seed)
	case "rgg":
		g, _ = repro.RandomGeometric(*n, *p, *seed)
	default:
		return usageError("unknown family %q (want %s)", *family, families)
	}
	if ordering != layout.Identity {
		perm, _, err := layout.Compute(g, ordering)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if perm != nil {
			if g, err = graph.Relabel(g, perm); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
		}
	}
	if *stream {
		cfg := dynmis.StreamConfig{
			Batches:   *streamBatches,
			BatchSize: *streamBatchSize,
			Locality:  *streamLocality,
			Churn:     *streamChurn,
		}
		batches, err := dynmis.UpdateStream(g, cfg, rng.New(*streamSeed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		hdr := &dynmis.StreamHeader{
			Family:     *family,
			N:          *n,
			Alpha:      *alpha,
			P:          *p,
			Seed:       *seed,
			StreamSeed: *streamSeed,
			Batches:    *streamBatches,
			BatchSize:  *streamBatchSize,
			Locality:   *streamLocality,
			Churn:      *streamChurn,
		}
		if err := dynmis.WriteStream(os.Stdout, hdr, batches); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		return 0
	}
	if err := g.WriteEdgeList(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	return 0
}
