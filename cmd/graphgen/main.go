// Command graphgen emits a generated graph as an edge list ("n m" header,
// one "u v" line per edge) on stdout — the format cmd/arbmis -stdin reads.
//
// Usage:
//
//	graphgen -family union -n 1024 -alpha 3 -seed 7 > graph.edges
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	os.Exit(run())
}

// families lists the accepted -family values (kept in the usage string).
const families = "tree|union|grid|gnp|pa|rgg"

// usageError reports a bad flag combination on stderr together with the
// flag summary, and returns the exit code.
func usageError(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "error: "+format+"\n", args...)
	flag.Usage()
	return 2
}

func run() int {
	family := flag.String("family", "union", "graph family: "+families)
	n := flag.Int("n", 1024, "number of vertices")
	alpha := flag.Int("alpha", 2, "arboricity parameter (union/pa)")
	p := flag.Float64("p", 0.01, "edge probability (gnp) / radius (rgg)")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	// Validate before generating: the generators assume sane parameters and
	// a bad flag must produce a usage message, not a panic or empty output.
	if *n <= 0 {
		return usageError("-n must be positive, got %d", *n)
	}
	if *alpha < 1 && (*family == "union" || *family == "pa") {
		return usageError("-alpha must be at least 1 for -family %s, got %d", *family, *alpha)
	}
	if (*p < 0 || *p > 1) && *family == "gnp" {
		return usageError("-p must be a probability in [0,1] for -family gnp, got %v", *p)
	}
	if *p < 0 && *family == "rgg" {
		return usageError("-p (radius) must be non-negative for -family rgg, got %v", *p)
	}

	var g *repro.Graph
	switch *family {
	case "tree":
		g = repro.RandomTree(*n, *seed)
	case "union":
		g = repro.UnionOfTrees(*n, *alpha, *seed)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = repro.Grid(side, side)
	case "gnp":
		g = repro.GNP(*n, *p, *seed)
	case "pa":
		g = repro.PreferentialAttachment(*n, *alpha, *seed)
	case "rgg":
		g, _ = repro.RandomGeometric(*n, *p, *seed)
	default:
		return usageError("unknown family %q (want %s)", *family, families)
	}
	if err := g.WriteEdgeList(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	return 0
}
