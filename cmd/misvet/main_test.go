package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestList checks -list names every analyzer in the suite.
func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{
		"determinism", "maprange", "wirekind", "congestbits",
		"framecodec", "hotalloc", "idspace", "draworder",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzer checks -only rejects names not in the suite before
// any loading happens, and that the error lists the valid names so the
// user does not need a second -list invocation.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "nonesuch"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr: %s", errOut.String())
	}
	for _, name := range []string{"valid analyzers:", "idspace", "draworder", "framecodec"} {
		if !strings.Contains(errOut.String(), name) {
			t.Errorf("usage error missing %q:\n%s", name, errOut.String())
		}
	}
	if !strings.Contains(errOut.String(), "usage: misvet") {
		t.Errorf("usage not printed:\n%s", errOut.String())
	}
}

// TestStaleBaseline checks stale entries warn by default and fail under
// -strict-baseline. The baseline records a finding no clean run
// produces, so filtering the real module leaves it stale.
func TestStaleBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	b := lint.NewBaseline([]lint.Diagnostic{{
		Analyzer: "determinism", File: "internal/congest/gone.go",
		Line: 1, Col: 1, Message: "call of time.Now (long since fixed)",
	}})
	if err := b.Write(baseline); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-C", "../..", "-baseline", baseline}, &out, &errOut); code != 0 {
		t.Fatalf("stale entry failed a non-strict run: exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "stale baseline entry") {
		t.Errorf("stale warning missing: %s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", "../..", "-baseline", baseline, "-strict-baseline"}, &out, &errOut); code != 1 {
		t.Fatalf("-strict-baseline with a stale entry: exit %d, want 1", code)
	}
}

// TestBadFlag checks flag errors exit with usage status.
func TestBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestModuleCleanJSON runs the real suite over the module: the tree must
// be clean, so -json emits an empty array and the exit status is 0. This
// is the CLI-level half of internal/lint's TestModuleClean.
func TestModuleCleanJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-C", "../..", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("expected empty JSON findings, got: %s", got)
	}
	// The clean run still has advisory escapes; the summary reports them.
	if !strings.Contains(errOut.String(), "advisory-suppressed") {
		t.Errorf("summary missing advisory count: %s", errOut.String())
	}
	// Baseline round trip through the CLI: recording a clean run writes an
	// empty baseline, and running against it stays clean.
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", "../..", "-write-baseline", baseline}, &out, &errOut); code != 0 {
		t.Fatalf("write-baseline exit %d, stderr: %s", code, errOut.String())
	}
	b, err := lint.LoadBaseline(baseline)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("clean module recorded %d baseline findings", len(b.Findings))
	}
}

// TestFilterPatterns checks pattern filtering is prefix-based on
// module-relative files, with "./..." keeping everything.
func TestFilterPatterns(t *testing.T) {
	diags := []lint.Diagnostic{
		{Analyzer: "determinism", File: "internal/congest/driver.go", Line: 1, Message: "m"},
		{Analyzer: "maprange", File: "internal/mis/metivier/metivier.go", Line: 2, Message: "m"},
	}
	if got := filterPatterns(diags, nil); len(got) != 2 {
		t.Errorf("no patterns: kept %d, want 2", len(got))
	}
	if got := filterPatterns(diags, []string{"./..."}); len(got) != 2 {
		t.Errorf("./...: kept %d, want 2", len(got))
	}
	got := filterPatterns(diags, []string{"./internal/mis/..."})
	if len(got) != 1 || got[0].File != "internal/mis/metivier/metivier.go" {
		t.Errorf("./internal/mis/...: got %v", got)
	}
	if got := filterPatterns(diags, []string{"./internal/congest"}); len(got) != 1 {
		t.Errorf("exact package: kept %d, want 1", len(got))
	}
	// A trailing slash (shell tab completion) must not defeat the prefix
	// match — it used to silently filter everything out, reporting a
	// false "0 finding(s)" for the package.
	if got := filterPatterns(diags, []string{"./internal/congest/"}); len(got) != 1 {
		t.Errorf("trailing slash: kept %d, want 1", len(got))
	}
	if got := filterPatterns(diags, []string{"./internal/mis/metivier/"}); len(got) != 1 {
		t.Errorf("trailing slash subpackage: kept %d, want 1", len(got))
	}
	if got := filterPatterns(diags, []string{"./internal/exp/..."}); len(got) != 0 {
		t.Errorf("unmatched pattern: kept %d, want 0", len(got))
	}
}
