// Command misvet runs the repository's determinism / CONGEST-contract
// analyzer suite (internal/lint) over the module and reports findings in
// go vet's clickable file:line:col format, prefixed with the analyzer
// name:
//
//	internal/mis/metivier/metivier.go:42:9: determinism: call of time.Now ...
//
// Usage:
//
//	misvet [flags] [package pattern ...]
//
// Patterns are module-relative import-path prefixes ("./...", the
// default, means the whole module; "./internal/congest/..." limits
// reporting to that subtree). The whole module is always loaded and
// type-checked — cross-package analyzers need it — patterns only filter
// which packages' findings are reported.
//
// Flags:
//
//	-json                emit findings as a JSON array instead of text
//	-baseline FILE       suppress findings recorded in FILE (burn-down mode)
//	-strict-baseline     treat stale baseline entries as an error
//	-write-baseline FILE record current findings as the accepted baseline
//	-only a,b            run only the named analyzers
//	-list                list the analyzers and exit
//
// Baseline entries that no longer match any finding are stale: the
// violation was fixed but the entry lingers. Stale entries are reported
// as warnings so burn-down actually burns down; -strict-baseline makes
// them fail the run (exit 1) until the baseline file is re-recorded.
//
// The summary line on stderr includes the suite's wall time, so analyzer
// cost regressions are visible in CI logs.
//
// Exit status: 0 when clean (or every finding is baselined), 1 when
// non-baselined findings exist (or stale entries under -strict-baseline),
// 2 on usage or load errors.
//
// misvet is stdlib-only: it is a standalone checker rather than a
// `go vet -vettool` plugin (which would require golang.org/x/tools), but
// it is wired into `make ci` right beside go vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("misvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut        = fs.Bool("json", false, "emit findings as JSON")
		baselinePath   = fs.String("baseline", "", "suppress findings recorded in this baseline file")
		strictBaseline = fs.Bool("strict-baseline", false, "treat stale baseline entries as an error")
		writeBaseline  = fs.String("write-baseline", "", "record current findings to this baseline file and exit")
		only           = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		list           = fs.Bool("list", false, "list analyzers and exit")
		dir            = fs.String("C", ".", "module directory to analyze")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: misvet [flags] [package pattern ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		var valid []string
		for _, a := range analyzers {
			byName[a.Name] = a
			valid = append(valid, a.Name)
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "misvet: unknown analyzer %q; valid analyzers: %s\n",
					name, strings.Join(valid, ", "))
				fs.Usage()
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	start := time.Now()
	module, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "misvet: %v\n", err)
		return 2
	}
	diags, suppressed := lint.Run(module, analyzers)
	elapsed := time.Since(start).Round(time.Millisecond)
	diags = filterPatterns(diags, fs.Args())

	if *writeBaseline != "" {
		if err := lint.NewBaseline(diags).Write(*writeBaseline); err != nil {
			fmt.Fprintf(stderr, "misvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "misvet: recorded %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	var baseline *lint.Baseline
	if *baselinePath != "" {
		baseline, err = lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "misvet: %v\n", err)
			return 2
		}
	}
	fresh, absorbed, stale := baseline.Filter(diags)
	for _, d := range stale {
		fmt.Fprintf(stderr, "misvet: stale baseline entry (fixed? re-record with -write-baseline): %s: %s: %s\n",
			d.Analyzer, d.File, d.Message)
	}

	if *jsonOut {
		out := fresh
		if out == nil {
			out = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "misvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintln(stdout, d)
		}
	}
	fmt.Fprintf(stderr, "misvet: %d finding(s); %d advisory-suppressed, %d baselined, %d stale (%d analyzers in %s)\n",
		len(fresh), suppressed, absorbed, len(stale), len(analyzers), elapsed)
	if len(fresh) > 0 {
		return 1
	}
	if *strictBaseline && len(stale) > 0 {
		return 1
	}
	return 0
}

// filterPatterns keeps findings whose package matches one of the
// go-style patterns ("./...", "./internal/congest", "./internal/mis/...").
// No patterns, or any "./..." pattern, keeps everything.
func filterPatterns(diags []lint.Diagnostic, patterns []string) []lint.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "/") // "./pkg/" must match like "./pkg"
		p = strings.TrimPrefix(strings.TrimSuffix(p, "/..."), "./")
		if p == "" || p == "." {
			return diags
		}
		prefixes = append(prefixes, p)
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		for _, p := range prefixes {
			if d.File == p || strings.HasPrefix(d.File, p+"/") {
				out = append(out, d)
				break
			}
		}
	}
	return out
}
