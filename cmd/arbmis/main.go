// Command arbmis runs one MIS algorithm on one generated (or piped) graph
// and reports rounds, messages, and the result.
//
// Usage:
//
//	arbmis -family union -n 4096 -alpha 3 -algo arbmis [-seed 1] [-parallel]
//	arbmis -stdin -algo metivier -trace < graph.edges
//
// Families: tree, union, grid, gnp, pa, rgg. Algorithms: arbmis,
// arbmis-paper, arbmis-full, metivier, luby-a, luby-b, ghaffari, matching.
// -trace prints per-round live/message counts for the baseline algorithms.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/graph"
)

func main() {
	os.Exit(run())
}

func run() int {
	family := flag.String("family", "union", "graph family: tree|union|grid|gnp|pa|rgg")
	n := flag.Int("n", 4096, "number of vertices")
	alpha := flag.Int("alpha", 2, "arboricity bound (union/pa; ArbMIS parameter everywhere)")
	p := flag.Float64("p", 0.01, "edge probability (gnp) / radius (rgg)")
	algo := flag.String("algo", "arbmis", "algorithm: arbmis|arbmis-paper|arbmis-full|metivier|luby-a|luby-b|ghaffari|matching")
	seed := flag.Uint64("seed", 1, "seed for graph and run")
	parallel := flag.Bool("parallel", false, "one goroutine per node")
	stdin := flag.Bool("stdin", false, "read an edge list (\"n m\" then \"u v\" lines) from stdin instead of generating")
	trace := flag.Bool("trace", false, "print per-round live-node and message counts (baseline algorithms)")
	flag.Parse()

	g, err := buildGraph(*stdin, *family, *n, *alpha, *p, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	lo, hi := repro.ArboricityBounds(g)
	fmt.Printf("graph: n=%d m=%d Δ=%d arboricity∈[%d,%d]\n", g.N(), g.M(), g.MaxDegree(), lo, hi)

	opts := repro.Options{Seed: *seed, Parallel: *parallel}
	if *trace {
		opts.Observer = func(round, live int, sent int64) {
			fmt.Printf("round %3d: live=%-6d sent=%d\n", round, live, sent)
		}
	}
	switch *algo {
	case "arbmis-full":
		out, err := repro.ComputeMISFull(g, *alpha, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		fmt.Printf("reduction: %d iterations, %d rounds, %d survivors (maxdeg %d, target %.0f)\n",
			out.ReductionIterations, out.ReductionResult.Rounds,
			out.SurvivorCount, out.SurvivorMaxDegree, out.TargetDegree)
		size := 0
		for _, in := range out.MIS {
			if in {
				size++
			}
		}
		fmt.Printf("|MIS|=%d rounds=%d\n", size, out.TotalRounds())
		fmt.Println("verified: MIS is independent and maximal")
	case "matching":
		partners, res, err := repro.MaximalMatching(g, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		pairs := 0
		for _, p := range partners {
			if p != repro.MatchingUnmatched {
				pairs++
			}
		}
		fmt.Printf("|M|=%d pairs, rounds=%d messages=%d\n", pairs/2, res.Rounds, res.Messages)
		fmt.Println("verified: matching is maximal")
	case "arbmis", "arbmis-paper":
		params := repro.PracticalParams(*alpha, g.MaxDegree())
		if *algo == "arbmis-paper" {
			params = repro.PaperParams(*alpha, g.MaxDegree(), 1)
		}
		out, err := repro.ComputeMISWithParams(g, params, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		fmt.Printf("params: Θ=%d Λ=%d\n", params.NumScales, params.Iterations)
		for _, s := range out.Stages {
			fmt.Printf("stage %-5s nodes=%-7d rounds=%-6d messages=%d\n",
				s.Name, s.Nodes, s.Result.Rounds, s.Result.Messages)
		}
		fmt.Printf("|MIS|=%d rounds=%d messages=%d maxMsgBits=%d badComponents=%d\n",
			out.MISSize(), out.TotalRounds(), out.TotalMessages(), out.MaxMessageBits(), len(out.BadComponentSizes))
		fmt.Println("verified: MIS is independent and maximal")
	default:
		var run func(*repro.Graph, repro.Options) ([]bool, repro.Result, error)
		switch *algo {
		case "metivier":
			run = repro.Metivier
		case "luby-a":
			run = repro.LubyA
		case "luby-b":
			run = repro.LubyB
		case "ghaffari":
			run = repro.Ghaffari
		default:
			fmt.Fprintf(os.Stderr, "error: unknown algorithm %q\n", *algo)
			return 1
		}
		set, res, err := run(g, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		if err := repro.VerifyMIS(g, set); err != nil {
			fmt.Fprintln(os.Stderr, "verification failed:", err)
			return 1
		}
		size := 0
		for _, in := range set {
			if in {
				size++
			}
		}
		fmt.Printf("|MIS|=%d rounds=%d messages=%d maxMsgBits=%d\n",
			size, res.Rounds, res.Messages, res.MaxMessageBits)
		fmt.Println("verified: MIS is independent and maximal")
	}
	return 0
}

func buildGraph(stdin bool, family string, n, alpha int, p float64, seed uint64) (*repro.Graph, error) {
	if stdin {
		return graph.ReadEdgeList(os.Stdin)
	}
	switch family {
	case "tree":
		return repro.RandomTree(n, seed), nil
	case "union":
		return repro.UnionOfTrees(n, alpha, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return repro.Grid(side, side), nil
	case "gnp":
		return repro.GNP(n, p, seed), nil
	case "pa":
		return repro.PreferentialAttachment(n, alpha, seed), nil
	case "rgg":
		g, _ := repro.RandomGeometric(n, p, seed)
		return g, nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
