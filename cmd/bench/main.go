// Command bench regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	bench [-quick] [-seeds N] [-seed S] [-only E1,E4,A2] [-parallel] [-workers W] [-format csv]
//	bench [-trace run.jsonl] [-trace-format jsonl|chrome] ...
//	bench -engine-bench BENCH_congest.json [-engine-n N] [-seed S]
//	bench -faults BENCH_faults.json [-faults-n N] [-seeds K] [-seed S]
//	bench -trace-bench BENCH_trace.json [-trace-n N] [-seed S]
//	bench -alloc-bench BENCH_alloc.json [-alloc-n N] [-alloc-baseline BENCH_congest.json] [-seed S]
//	bench -dynmis-bench BENCH_dynmis.json [-dynmis-ns 4096,65536] [-dynmis-batches B] [-seed S]
//	bench -dist-bench BENCH_dist.json [-dist-n N] [-dist-shards 1,2,4,8] [-dist-reps R] [-seed S]
//	bench [-cpuprofile cpu.pprof] [-memprofile mem.pprof] ...
//
// Each experiment prints its table and notes; the process exits non-zero if
// any driver fails. With -parallel the runs use the sharded worker-pool
// engine and a driver-efficiency summary (per-shard busy time, merge time,
// parallel efficiency) is printed at the end. With -trace every engine run
// the selected experiments spawn streams its execution-trace events to one
// file — JSONL (replayable with cmd/traceview) or the Chrome trace-event
// format (loadable in chrome://tracing).
//
// -engine-bench measures every engine driver (sequential, worker pool,
// legacy goroutine-per-vertex) on a seed-pinned workload and writes the
// rounds/sec and messages/sec trajectory as JSON, so perf changes are
// visible across PRs.
//
// -faults sweeps the E16 fault scenarios (drops, crashes, partitions)
// against the fault-tolerant MIS on a seed-pinned workload and writes the
// rounds/coverage trajectory as JSON; the run fails if any fault plan
// produces an independence violation.
//
// -trace-bench measures the execution-tracing overhead (off / ring / JSONL)
// on a seed-pinned workload and writes BENCH_trace.json, the E17 budget
// check (ring ≤ 15% at n = 2^14 on the pool driver).
//
// -alloc-bench measures every driver's heap-allocation profile (allocations
// and bytes per run, allocations per message) plus throughput on the same
// seed-pinned workload as -engine-bench, and writes BENCH_alloc.json, the
// E18 zero-allocation message-path check. -alloc-baseline points at an
// earlier BENCH_congest.json whose sequential messages/sec becomes the
// embedded speedup baseline.
//
// -dynmis-bench replays generated update streams through the dynamic-MIS
// engine (internal/dynmis) on the tree and union-of-trees families,
// measuring incremental-repair throughput against the full-recompute
// baseline and the repaired-region size distribution, and writes
// BENCH_dynmis.json. Rows at n >= 2^16 must beat full recomputation by
// -dynmis-min-speedup (default 10x) or the run fails; the sequential and
// pool drivers must agree on every stream fingerprint (always enforced).
//
// -dist-bench measures the distributed multi-process driver (shard workers
// in separate OS processes over unix sockets) across fleet shapes on a
// seed-pinned workload and writes BENCH_dist.json. Every fleet shape must
// reproduce the sequential run's deterministic fingerprint bit-for-bit —
// clean and under a pinned fault plan — or the run fails; the report
// records frame bytes and round-trip latency per round.
//
// -cpuprofile and -memprofile write pprof profiles covering whatever work
// the invocation did (experiments or one of the bench modes); inspect them
// with `go tool pprof`. The memory profile is written at exit with an
// up-to-date heap picture (runtime.GC precedes the write).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/congest"
	"repro/internal/distrib"
	"repro/internal/dynmis"
	"repro/internal/exp"
	"repro/internal/trace"
)

func main() {
	// Self-exec hook first: -dist-bench and E21 spawn ExecFleet workers by
	// re-running this binary, which must never reach flag parsing.
	distrib.MaybeWorker()
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "use test-sized sweeps")
	seeds := flag.Int("seeds", 0, "replications per point (0 = config default)")
	seed := flag.Uint64("seed", 1, "root seed")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	parallel := flag.Bool("parallel", false, "use the sharded worker-pool engine")
	workers := flag.Int("workers", 0, "worker-pool shard count (0 = GOMAXPROCS)")
	format := flag.String("format", "table", "output format: table|csv")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	engineBench := flag.String("engine-bench", "", "write engine driver throughput JSON to this file and exit")
	engineN := flag.Int("engine-n", 1<<14, "graph size for -engine-bench")
	engineReps := flag.Int("engine-reps", 3, "runs per driver for -engine-bench (best wall time wins)")
	faults := flag.String("faults", "", "write fault-tolerance sweep JSON to this file and exit")
	faultsN := flag.Int("faults-n", 1<<10, "graph size for -faults")
	tracePath := flag.String("trace", "", "stream every run's execution-trace events to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace file format: jsonl|chrome")
	traceBench := flag.String("trace-bench", "", "write tracing-overhead JSON to this file and exit")
	traceN := flag.Int("trace-n", 1<<14, "graph size for -trace-bench")
	traceReps := flag.Int("trace-reps", 5, "runs per mode for -trace-bench (best wall time wins)")
	scaleBench := flag.String("scale-bench", "", "write cores × n scaling JSON to this file and exit")
	scaleNS := flag.String("scale-ns", "262144,1048576,4194304", "comma-separated graph sizes for -scale-bench")
	scaleWorkers := flag.String("scale-workers", "1,2,4,8,0", "comma-separated pool worker counts for -scale-bench (0 = GOMAXPROCS)")
	scaleReps := flag.Int("scale-reps", 2, "timed runs per cell for -scale-bench (best wall time wins)")
	scaleGPV := flag.Bool("scale-gpv", false, "include the legacy goroutine-per-vertex driver in -scale-bench")
	dynmisBench := flag.String("dynmis-bench", "", "write dynamic-MIS incremental-repair JSON to this file and exit")
	dynmisNS := flag.String("dynmis-ns", "4096,16384,65536", "comma-separated graph sizes for -dynmis-bench")
	dynmisBatches := flag.Int("dynmis-batches", 64, "update batches per case for -dynmis-bench")
	dynmisBatchSize := flag.Int("dynmis-batch-size", 16, "updates per batch for -dynmis-bench")
	dynmisLocality := flag.Float64("dynmis-locality", 0, "stream locality in [0,1] for -dynmis-bench")
	dynmisChurn := flag.Float64("dynmis-churn", 0.05, "stream node-churn probability in [0,1] for -dynmis-bench")
	dynmisMinSpeedup := flag.Float64("dynmis-min-speedup", 10, "fail -dynmis-bench when a row with n >= 65536 falls below this incremental-vs-recompute speedup (0 = record only)")
	distBench := flag.String("dist-bench", "", "write distributed-driver fleet JSON to this file and exit")
	distN := flag.Int("dist-n", 1<<10, "graph size for -dist-bench")
	distShards := flag.String("dist-shards", "1,2,4,8", "comma-separated shard-process counts for -dist-bench")
	distReps := flag.Int("dist-reps", 3, "clean runs per fleet shape for -dist-bench (best wall time wins)")
	layoutBench := flag.String("layout-bench", "", "write layout × family × n locality JSON to this file and exit")
	layoutNS := flag.String("layout-ns", "65536,262144,1048576", "comma-separated graph sizes for -layout-bench")
	layoutReps := flag.Int("layout-reps", 2, "timed runs per cell for -layout-bench (best wall time wins)")
	layoutMinSpeedup := flag.Float64("layout-min-speedup", 1.15, "fail -layout-bench when the best non-identity layout on the densest family at the largest n falls below this sequential speedup over identity (0 = record only)")
	allocBench := flag.String("alloc-bench", "", "write allocation-profile JSON to this file and exit")
	allocN := flag.Int("alloc-n", 1<<14, "graph size for -alloc-bench")
	allocReps := flag.Int("alloc-reps", 5, "runs per driver for -alloc-bench (best wall time / min allocs win)")
	allocBaseline := flag.String("alloc-baseline", "", "BENCH_congest.json whose sequential msgs/s is the -alloc-bench speedup baseline")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the invocation to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage: bench [flags]\n\nRegenerates the experiment tables of EXPERIMENTS.md.\n\nExperiments (-only):\n")
		for _, d := range exp.All() {
			fmt.Fprintf(out, "  %-4s %s\n", d.ID, d.Name)
		}
		fmt.Fprintf(out, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize an up-to-date heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *engineBench != "" {
		return runEngineBench(*engineBench, *engineN, *seed, *engineReps)
	}
	if *traceBench != "" {
		return runTraceBench(*traceBench, *traceN, *seed, *traceReps)
	}
	if *scaleBench != "" {
		return runScaleBench(*scaleBench, *scaleNS, *scaleWorkers, *seed, *scaleReps, *scaleGPV)
	}
	if *layoutBench != "" {
		return runLayoutBench(*layoutBench, *layoutNS, *seed, *layoutReps, *layoutMinSpeedup)
	}
	if *allocBench != "" {
		return runAllocBench(*allocBench, *allocN, *seed, *allocReps, *allocBaseline)
	}
	if *distBench != "" {
		return runDistBench(*distBench, *distN, *distShards, *seed, *distReps)
	}
	if *dynmisBench != "" {
		return runDynmisBench(*dynmisBench, *dynmisNS, *dynmisBatches, *dynmisBatchSize,
			*dynmisLocality, *dynmisChurn, *seed, *dynmisMinSpeedup)
	}
	if *faults != "" {
		k := *seeds
		if k <= 0 {
			k = 5
		}
		return runFaultBench(*faults, *faultsN, *seed, k)
	}

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.Workers = *workers
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *parallel {
		cfg.PoolStats = &congest.DriverStats{}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
		defer f.Close()
		switch *traceFormat {
		case "jsonl":
			sink := trace.NewJSONLSink(f)
			defer func() {
				if err := sink.Flush(); err != nil {
					fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				}
			}()
			cfg.Events = sink
		case "chrome":
			sink := trace.NewChromeSink(f)
			defer func() {
				if err := sink.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				}
			}()
			cfg.Events = sink
		default:
			fmt.Fprintf(os.Stderr, "trace: unknown format %q (want jsonl or chrome)\n", *traceFormat)
			return 1
		}
	}

	if *list {
		for _, d := range exp.All() {
			fmt.Printf("%-4s %s\n", d.ID, d.Name)
		}
		return 0
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	failed := 0
	for _, d := range exp.All() {
		if len(want) > 0 && !want[d.ID] {
			continue
		}
		start := time.Now()
		rep, err := d.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s): FAILED: %v\n", d.ID, d.Name, err)
			failed++
			continue
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n%s", rep.ID, rep.Title, rep.Table.CSV())
			// Notes carry derived observations (compliance ratios, fit
			// exponents); emit them as comment lines so machine-readable
			// runs keep them.
			for _, note := range rep.Notes {
				fmt.Printf("# note: %s\n", note)
			}
			fmt.Println()
		} else {
			fmt.Println(rep.String())
			fmt.Printf("(%s completed in %v)\n\n", d.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if cfg.PoolStats != nil && cfg.PoolStats.Rounds > 0 {
		fmt.Println(cfg.PoolStats.String())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}

// runEngineBench measures all drivers and writes BENCH_congest.json.
func runEngineBench(path string, n int, seed uint64, reps int) int {
	report, err := exp.RunEngineBench(n, seed, reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "engine bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "engine bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "engine bench: %v\n", err)
		return 1
	}
	for _, d := range report.Drivers {
		// The pool row reports the worker count the engine resolved the
		// request to (clamped to GOMAXPROCS and n), so the output is
		// self-describing on any machine.
		name := d.Driver
		if d.Workers > 0 {
			name = fmt.Sprintf("%s(w=%d)", d.Driver, d.Workers)
		}
		fmt.Printf("%-22s n=%d rounds=%d wall=%v rounds/s=%.0f msgs/s=%.0f\n",
			name, report.N, d.Rounds, time.Duration(d.WallNS).Round(time.Microsecond),
			d.RoundsPerSec, d.MessagesPerSec)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// parseInts parses a comma-separated integer list flag.
func parseInts(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%s: bad entry %q: %v", flagName, part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty list", flagName)
	}
	return out, nil
}

// runScaleBench measures the cores × n scaling matrix and writes
// BENCH_scale.json. Every text row names both the requested and resolved
// worker counts, so clamped requests are visible at a glance.
func runScaleBench(path, nsFlag, workersFlag string, seed uint64, reps int, includeGPV bool) int {
	ns, err := parseInts("-scale-ns", nsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale bench: %v\n", err)
		return 1
	}
	workerSet, err := parseInts("-scale-workers", workersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale bench: %v\n", err)
		return 1
	}
	report, err := exp.RunScaleBench(ns, workerSet, seed, reps, includeGPV)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "scale bench: %v\n", err)
		return 1
	}
	fmt.Printf("cores × n scaling (cpus=%d, gomaxprocs ambient=%d effective=%d)\n",
		report.NumCPU, report.GoMaxProcsAmbient, report.GoMaxProcsEffective)
	for _, size := range report.Sizes {
		for _, e := range size.Entries {
			name := e.Driver
			if e.Workers > 0 {
				name = fmt.Sprintf("%s(w=%d req=%d)", e.Driver, e.Workers, e.WorkersRequested)
			}
			stall := ""
			if e.FaultedStalled {
				stall = " faulted-stalled"
			}
			fmt.Printf("%-24s n=%-8d wall=%-12v speedup=%.2fx msgs/s=%-12.0f rebalances=%-3d fp=%s/%s%s\n",
				name, size.N, time.Duration(e.WallNS).Round(time.Microsecond), e.SpeedupVsPool1,
				e.MessagesPerSec, e.Rebalances, e.FingerprintClean, e.FingerprintFaulted, stall)
		}
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// runLayoutBench measures the cache-locality win of vertex relabeling
// across the layout × family × n matrix and writes BENCH_layout.json,
// enforcing the minimum-speedup bar in-run unless it is 0.
func runLayoutBench(path, nsFlag string, seed uint64, reps int, minSpeedup float64) int {
	ns, err := parseInts("-layout-ns", nsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "layout bench: %v\n", err)
		return 1
	}
	report, err := exp.RunLayoutBench(ns, seed, reps, minSpeedup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "layout bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "layout bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "layout bench: %v\n", err)
		return 1
	}
	fmt.Printf("layout × family × n locality matrix (cpus=%d, scrambled labels)\n", report.NumCPU)
	for _, cse := range report.Cases {
		for _, e := range cse.Entries {
			fmt.Printf("%-9s %-9s n=%-8d m=%-8d wall=%-12v relabel=%-10v speedup=%.3fx msgs/s=%-12.0f fp=%s\n",
				cse.Family, e.Layout, cse.N, cse.M,
				time.Duration(e.WallNS).Round(time.Microsecond),
				time.Duration(e.RelabelNS).Round(time.Microsecond),
				e.SpeedupVsIdentity, e.MessagesPerSec, e.FingerprintClean)
		}
	}
	if report.BarLayout != "" {
		fmt.Printf("bar: %s on %s n=%d reaches %.3fx over identity (min %.2fx)\n",
			report.BarLayout, report.BarFamily, report.BarN, report.BarSpeedup, report.MinSpeedup)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// runDynmisBench measures the dynamic-MIS engine's incremental-repair
// throughput against full recomputation and writes BENCH_dynmis.json. Each
// size runs on the tree and union-of-trees families under a low-locality
// stream; rows at n >= 2^16 must clear the minSpeedup acceptance bar.
func runDynmisBench(path, nsFlag string, batches, batchSize int, locality, churn float64, seed uint64, minSpeedup float64) int {
	ns, err := parseInts("-dynmis-ns", nsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynmis bench: %v\n", err)
		return 1
	}
	var cases []exp.DynmisBenchCase
	for _, n := range ns {
		cases = append(cases,
			exp.DynmisBenchCase{Family: "tree", N: n, Batches: batches},
			exp.DynmisBenchCase{Family: "union", N: n, Batches: batches})
	}
	cfg := dynmis.StreamConfig{BatchSize: batchSize, Locality: locality, Churn: churn}
	report, err := exp.RunDynmisBench(cases, cfg, seed, minSpeedup, 1<<16)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynmis bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynmis bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dynmis bench: %v\n", err)
		return 1
	}
	for _, e := range report.Entries {
		fmt.Printf("%-6s n=%-8d updates/s=%-11.0f recompute/s=%-9.0f speedup=%-8.1f region mean=%-6.1f p90=%-4d max=%-5d fp=%s\n",
			e.Family, e.N, e.UpdatesPerSec, e.RecomputePerSec, e.Speedup, e.RegionMean, e.RegionP90, e.RegionMax, e.Fingerprint)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// runDistBench measures the distributed multi-process driver across fleet
// shapes and writes BENCH_dist.json. Every text row names the resolved
// topology — shard-process count, transport, socket — the way the engine
// bench names pool(w=N); a fingerprint divergence from the sequential
// reference fails the run.
func runDistBench(path string, n int, shardsFlag string, seed uint64, reps int) int {
	shardSet, err := parseInts("-dist-shards", shardsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: %v\n", err)
		return 1
	}
	report, err := exp.RunDistBench(n, shardSet, seed, reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dist bench: %v\n", err)
		return 1
	}
	fmt.Printf("sequential reference      n=%d wall=%v fp=%s faulted-fp=%s\n",
		report.N, time.Duration(report.SequentialWallNS).Round(time.Microsecond),
		report.SequentialFingerprint, report.SequentialFingerprintFault)
	for _, e := range report.Entries {
		name := fmt.Sprintf("dist(shards=%d, transport=%s, socket=%s)", e.Shards, e.Transport, e.Socket)
		fmt.Printf("%s\n  n=%d rounds=%d wall=%v msgs/s=%.0f speedup=%.2fx frameKB/round=%.1f rtt=%v clean=%t faulted=%t\n",
			name, report.N, e.Rounds, time.Duration(e.WallNS).Round(time.Microsecond),
			e.MessagesPerSec, e.SpeedupVsSequential, e.FrameBytesPerRound/1024,
			time.Duration(e.MeanRTTNanos).Round(time.Microsecond), e.CleanMatch, e.FaultedMatch)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// runTraceBench measures tracing overhead and writes BENCH_trace.json.
func runTraceBench(path string, n int, seed uint64, reps int) int {
	report, err := exp.RunTraceBench(n, seed, reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "trace bench: %v\n", err)
		return 1
	}
	for _, m := range report.Modes {
		fmt.Printf("%-6s n=%d wall=%v overhead=%+.1f%% events=%d\n",
			m.Mode, report.N, time.Duration(m.WallNS).Round(time.Microsecond), m.OverheadPct, m.Events)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// runAllocBench measures every driver's allocation profile and writes
// BENCH_alloc.json. baselinePath, when set, names an earlier
// BENCH_congest.json whose sequential messages/sec seeds the speedup field.
func runAllocBench(path string, n int, seed uint64, reps int, baselinePath string) int {
	baseline := 0.0
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alloc bench: baseline: %v\n", err)
			return 1
		}
		var prior exp.EngineBenchReport
		if err := json.Unmarshal(data, &prior); err != nil {
			fmt.Fprintf(os.Stderr, "alloc bench: baseline: %v\n", err)
			return 1
		}
		for _, d := range prior.Drivers {
			if d.Driver == congest.DriverSequential.String() {
				baseline = d.MessagesPerSec
			}
		}
		if baseline == 0 {
			fmt.Fprintf(os.Stderr, "alloc bench: baseline %s has no sequential entry\n", baselinePath)
			return 1
		}
	}
	report, err := exp.RunAllocBench(n, seed, reps, baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alloc bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "alloc bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "alloc bench: %v\n", err)
		return 1
	}
	for _, d := range report.Drivers {
		fmt.Printf("%-22s n=%d wall=%v msgs/s=%.0f allocs/run=%d B/run=%d allocs/msg=%.4f\n",
			d.Driver, report.N, time.Duration(d.WallNS).Round(time.Microsecond),
			d.MessagesPerSec, d.AllocsPerRun, d.BytesPerRun, d.AllocsPerMessage)
	}
	if report.SequentialSpeedup > 0 {
		fmt.Printf("sequential speedup vs baseline (%.0f msgs/s): %.2fx\n",
			report.BaselineMessagesPerSec, report.SequentialSpeedup)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// runFaultBench sweeps the fault scenarios and writes BENCH_faults.json.
func runFaultBench(path string, n int, seed uint64, seeds int) int {
	report, err := exp.RunFaultBench(n, seed, seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fault bench: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fault bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "fault bench: %v\n", err)
		return 1
	}
	for _, e := range report.Entries {
		fmt.Printf("%-14s x=%-6v runs=%d rounds=%.1f coverage=%.3f undecided=%d crashed=%d dropped=%d delayed=%d\n",
			e.Scenario, e.Intensity, e.Runs, e.MeanRounds, e.Coverage, e.Undecided, e.Crashed, e.Dropped, e.Delayed)
	}
	fmt.Printf("wrote %s (safety: 0 violations across %d entries)\n", path, len(report.Entries))
	return 0
}
