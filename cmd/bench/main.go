// Command bench regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	bench [-quick] [-seeds N] [-seed S] [-only E1,E4,A2] [-parallel] [-format csv]
//
// Each experiment prints its table and notes; the process exits non-zero if
// any driver fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "use test-sized sweeps")
	seeds := flag.Int("seeds", 0, "replications per point (0 = config default)")
	seed := flag.Uint64("seed", 1, "root seed")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	parallel := flag.Bool("parallel", false, "use the goroutine-per-node engine")
	format := flag.String("format", "table", "output format: table|csv")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}

	if *list {
		for _, d := range exp.All() {
			fmt.Printf("%-4s %s\n", d.ID, d.Name)
		}
		return 0
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	failed := 0
	for _, d := range exp.All() {
		if len(want) > 0 && !want[d.ID] {
			continue
		}
		start := time.Now()
		rep, err := d.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s): FAILED: %v\n", d.ID, d.Name, err)
			failed++
			continue
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n%s\n", rep.ID, rep.Title, rep.Table.CSV())
		} else {
			fmt.Println(rep.String())
			fmt.Printf("(%s completed in %v)\n\n", d.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
