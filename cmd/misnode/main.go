// Command misnode is a standalone shard worker for the distributed
// CONGEST driver (internal/distrib). It listens on a unix or tcp socket
// and serves one run per accepted connection: the coordinator ships the
// shard config, then round frames, and the worker answers with sweep
// results until the finish/outputs exchange.
//
// A coordinator using congest.DriverDistributed with a distrib.DialFleet
// connects to one misnode per shard:
//
//	misnode -listen tcp:127.0.0.1:9801 &
//	misnode -listen tcp:127.0.0.1:9802 &
//	# coordinator: distrib.NewDialFleet(g, prog, []string{"127.0.0.1:9801", "127.0.0.1:9802"})
//
// With -once the worker exits after its first run, which is what the
// crash-recovery tests and throwaway fleets want; without it the accept
// loop serves runs until killed. The coordinator can also ask the worker
// to expose Prometheus metrics (shard config carries the listen address),
// independent of any flags here.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"repro/internal/distrib"
)

func main() {
	// Self-exec hook first: when an ExecFleet re-runs this binary as a
	// spawned worker, it must never reach the flag parsing below.
	distrib.MaybeWorker()
	os.Exit(run())
}

// usageError reports a bad flag combination on stderr together with the
// flag summary, and returns the exit code.
func usageError(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "error: "+format+"\n", args...)
	flag.Usage()
	return 2
}

func run() int {
	listen := flag.String("listen", "", "listen address: unix:/path/to.sock or tcp:host:port (required)")
	once := flag.Bool("once", false, "serve a single run and exit instead of accepting forever")
	flag.Parse()

	if flag.NArg() > 0 {
		return usageError("unexpected arguments: %v", flag.Args())
	}
	if *listen == "" {
		return usageError("-listen is required")
	}
	network, addr, ok := strings.Cut(*listen, ":")
	if !ok || addr == "" || (network != "unix" && network != "tcp") {
		return usageError("-listen must be unix:/path or tcp:host:port, got %q", *listen)
	}

	ln, err := net.Listen(network, addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "misnode: listen %s: %v\n", *listen, err)
		return 1
	}
	defer ln.Close()
	fmt.Printf("misnode: listening on %s:%s\n", network, ln.Addr())

	for {
		c, err := ln.Accept()
		if err != nil {
			fmt.Fprintf(os.Stderr, "misnode: accept: %v\n", err)
			return 1
		}
		if err := distrib.ServeConn(c); err != nil {
			fmt.Fprintf(os.Stderr, "misnode: run: %v\n", err)
		}
		c.Close()
		if *once {
			return 0
		}
	}
}
