// Command traceview inspects, converts, diffs, and serves recorded
// execution traces (the JSONL files cmd/bench -trace writes).
//
// Usage:
//
//	traceview summary run.jsonl
//	traceview diff a.jsonl b.jsonl
//	traceview chrome run.jsonl > run.chrome.json
//	traceview serve -addr :9464 run.jsonl
//
// summary prints the trace's shape: rounds, event counts per type, message
// totals, and the deterministic fingerprint (the value the golden tests
// pin).
//
// diff bisects two traces to their first divergent deterministic event and
// exits non-zero if they diverge; advisory events (driver timings, shard
// flow) are ignored, so traces recorded under different engine drivers
// compare clean.
//
// chrome converts a JSONL trace to the Chrome trace-event format on
// stdout, loadable in chrome://tracing or https://ui.perfetto.dev.
//
// serve folds the trace into Prometheus metrics and serves them at
// /metrics in the text exposition format, so a recorded run can be
// inspected with a stock Prometheus/Grafana stack.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintf(os.Stderr, `Usage:
  traceview summary run.jsonl
  traceview diff a.jsonl b.jsonl
  traceview chrome run.jsonl > run.chrome.json
  traceview serve [-addr :9464] run.jsonl
`)
	return 2
}

func run(args []string) int {
	if len(args) < 1 {
		return usage()
	}
	switch args[0] {
	case "summary":
		if len(args) != 2 {
			return usage()
		}
		return summary(args[1])
	case "diff":
		if len(args) != 3 {
			return usage()
		}
		return diff(args[1], args[2])
	case "chrome":
		if len(args) != 2 {
			return usage()
		}
		return chrome(args[1])
	case "serve":
		fs := flag.NewFlagSet("serve", flag.ContinueOnError)
		addr := fs.String("addr", ":9464", "listen address for /metrics")
		if err := fs.Parse(args[1:]); err != nil || fs.NArg() != 1 {
			return usage()
		}
		return serve(*addr, fs.Arg(0))
	default:
		fmt.Fprintf(os.Stderr, "traceview: unknown command %q\n", args[0])
		return usage()
	}
}

// load reads one JSONL trace file.
func load(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadJSONL(f)
}

// summary prints the trace's aggregate shape.
func summary(path string) int {
	events, err := load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	byType := map[trace.Type]int{}
	var rounds int32 = -1
	var sent, delivered, dropped, delayed, halts, draws int64
	for _, e := range events {
		byType[e.Type]++
		if e.Round > rounds {
			rounds = e.Round
		}
		switch e.Type {
		case trace.EvRoundEnd:
			sent += e.X
			delivered += e.Y
			dropped += e.Z
		case trace.EvDelay:
			delayed++
		case trace.EvHalt:
			halts++
		case trace.EvRNG:
			draws += e.X
		}
	}
	fmt.Printf("%s: %d events, %d rounds (round 0 = Init)\n", path, len(events), rounds+1)
	fmt.Printf("  messages: sent=%d delivered=%d dropped=%d delayed=%d\n", sent, delivered, dropped, delayed)
	fmt.Printf("  nodes:    halts=%d rng-draws=%d\n", halts, draws)
	det := trace.Deterministic(events)
	fmt.Printf("  fingerprint %#x over %d deterministic events\n", trace.Fingerprint(events), len(det))
	types := make([]trace.Type, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		fmt.Printf("  %-12s %d\n", t.String(), byType[t])
	}
	return 0
}

// diff bisects two traces and reports the first divergence.
func diff(pathA, pathB string) int {
	a, err := load(pathA)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	b, err := load(pathB)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	if d := trace.Bisect(a, b); d != nil {
		fmt.Printf("%s\n", d)
		return 1
	}
	fmt.Printf("traces identical: fingerprint %#x\n", trace.Fingerprint(a))
	return 0
}

// chrome converts a JSONL trace to the Chrome trace-event format.
func chrome(path string) int {
	events, err := load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	sink := trace.NewChromeSink(os.Stdout)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	return 0
}

// serve exposes the trace as Prometheus metrics.
func serve(addr, path string) int {
	events, err := load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	m := trace.NewMetrics()
	for _, e := range events {
		m.Emit(e)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Registry().Handler())
	fmt.Printf("serving %s at http://%s/metrics\n", path, addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}
	return 0
}
