package repro_test

import (
	"fmt"

	"repro"
)

// ExampleComputeMIS shows the three-line happy path: generate a bounded-
// arboricity graph, run the paper's pipeline, use the verified set.
func ExampleComputeMIS() {
	g := repro.UnionOfTrees(1000, 2, 42)
	out, err := repro.ComputeMIS(g, 2, repro.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(repro.VerifyMIS(g, out.MIS) == nil)
	// Output: true
}

// ExampleConjunctionBound evaluates Theorem 1.1 at the paper's own use
// site: k = α for Event (1).
func ExampleConjunctionBound() {
	// 100 events, each true with probability 0.9, read-2 structure.
	// Independent events would give 0.9^100 ≈ 2.66e-05; the read-2 bound
	// costs a square root.
	fmt.Printf("%.4f\n", repro.ConjunctionBound(0.9, 100, 2))
	// Output: 0.0052
}

// ExampleMaximalMatching runs the sibling primitive.
func ExampleMaximalMatching() {
	g := repro.Grid(4, 4)
	partners, _, err := repro.MaximalMatching(g, repro.Options{Seed: 3})
	if err != nil {
		panic(err)
	}
	matched := 0
	for _, p := range partners {
		if p != repro.MatchingUnmatched {
			matched++
		}
	}
	fmt.Println(matched%2 == 0, matched >= 8)
	// Output: true true
}

// ExampleNewFamily builds a read-k family by hand and checks its read
// parameter.
func ExampleNewFamily() {
	f, err := repro.NewFamily(4)
	if err != nil {
		panic(err)
	}
	// Two members both reading base variable 0: X0 is read twice.
	_ = f.Add([]int{0, 1}, func(v []uint64) bool { return v[0] > v[1] })
	_ = f.Add([]int{0, 2, 3}, func(v []uint64) bool { return v[0] > v[1] && v[0] > v[2] })
	fmt.Println(f.K())
	// Output: 2
}
