# Developer entry points. The repo is plain `go build`-able; these targets
# just name the workflows CI and PRs rely on.

.PHONY: build test vet misvet race cover alloc-gate scale-smoke dynmis-smoke dist-smoke layout-smoke ci bench-engine bench bench-faults bench-trace bench-alloc bench-scale bench-dynmis bench-dist bench-layout

build:
	go build ./...

test: build
	go test ./...

vet:
	go vet ./...

# Repo-specific static analysis (internal/lint via cmd/misvet): the
# determinism and CONGEST contracts — no wall clocks / math/rand /
# atomics / goroutines / map ranges in deterministic packages, closed
# wire-kind and frame-kind namespaces, encoder bit sizes within
# congest.MaxWireBits, allocation-free //congest:hotpath call chains,
# internal/external vertex-ID separation (idspace), and coordinator-only
# randomness (draworder). Any non-baselined finding fails the build; the
# summary line records the suite's wall time so analyzer cost
# regressions show up in CI logs. See README "Static analysis" for the
# escape hatches.
misvet:
	go run ./cmd/misvet ./...

# Engine safety net: vet plus race-detector coverage of the concurrent
# code — the CONGEST drivers (sharded worker pool, legacy
# goroutine-per-vertex, distributed coordinator) and the multi-process
# fleet transport (frame codec, worker protocol, crash recovery).
race:
	go vet ./internal/congest/... ./internal/distrib/... && go test -race ./internal/congest/... ./internal/distrib/...

# Coverage gates: the engine, the fault-injection subsystem, and the
# execution-trace subsystem are the load-bearing packages; their statement
# coverage must stay at or above the threshold. The analyzer suite holds a
# higher bar — its fixture tests are the only thing standing between an
# analyzer regression and silently-unguarded determinism contracts.
COVER_PKGS        = repro/internal/faultsim repro/internal/congest repro/internal/trace
COVER_MIN         = 60.0
LINT_COVER_MIN    = 80.0
DYNMIS_COVER_MIN  = 80.0
DISTRIB_COVER_MIN = 80.0
LAYOUT_COVER_MIN  = 80.0

COVER_AWK = { print } \
	/coverage:/ { \
		for (i = 1; i <= NF; i++) if ($$i == "coverage:") { pct = $$(i+1); sub(/%/, "", pct); \
			if (pct + 0 < min) { printf "FAIL: %s coverage %s%% below %s%%\n", $$2, pct, min; bad = 1 } } \
	} \
	END { exit bad }

cover:
	@go test -cover $(COVER_PKGS) | awk -v min=$(COVER_MIN) '$(COVER_AWK)'
	@go test -cover repro/internal/lint | awk -v min=$(LINT_COVER_MIN) '$(COVER_AWK)'
	@go test -cover repro/internal/dynmis | awk -v min=$(DYNMIS_COVER_MIN) '$(COVER_AWK)'
	@go test -cover repro/internal/distrib | awk -v min=$(DISTRIB_COVER_MIN) '$(COVER_AWK)'
	@go test -cover repro/internal/layout | awk -v min=$(LAYOUT_COVER_MIN) '$(COVER_AWK)'

# Allocation gate: a steady-state sequential round (n = 1024 ring,
# every node broadcasting) must perform zero heap allocations — the
# invariant the value-typed wire payloads and the flat inbox arena exist
# to provide. Fast (< 1s); runs in ci.
alloc-gate:
	go test -run '^TestSteadyStateRound' -count=1 ./internal/congest/

# Scaling smoke: the E19 slice of the cores × n matrix at test size —
# sequential + pool at two worker counts, fingerprints forced identical
# (any divergence fails the run). Fast (< 1s); runs in ci. The full
# production trajectory is `make bench-scale`.
scale-smoke:
	go run ./cmd/bench -quick -only E19

# Dynamic-MIS smoke: the E20 slice at test size — incremental repair vs
# full recompute on a generated update stream, with the sequential/pool
# stream-fingerprint equality enforced inside the driver. Fast (< 1s);
# runs in ci. The full trajectory is `make bench-dynmis`.
dynmis-smoke:
	go run ./cmd/bench -quick -only E20

# Distributed-driver smoke: the E21 slice at test size — shard workers in
# separate OS processes over unix sockets, every fleet shape forced to
# reproduce the sequential fingerprint bit-for-bit, clean and faulted.
# Fast (< 2s); runs in ci. The full trajectory is `make bench-dist`.
dist-smoke:
	go run ./cmd/bench -quick -only E21

# Layout smoke: the E22 slice of the layout × family matrix at test size —
# every ordering over scrambled inputs, with the within-layout
# sequential/pool fingerprint equality enforced inside the driver. Fast
# (< 1s); runs in ci. The full matrix is `make bench-layout`.
layout-smoke:
	go run ./cmd/bench -quick -only E22

# Full pre-merge gate: build (cmd/traceview included via ./...) + tests,
# repo-wide vet, the misvet analyzer suite, race-detector pass, coverage
# floors, allocation gate, multicore-scaling smoke, dynamic-MIS smoke,
# distributed-driver smoke, layout smoke.
ci: test vet misvet race cover alloc-gate scale-smoke dynmis-smoke dist-smoke layout-smoke

# Refresh the seed-pinned driver throughput trajectory consumed by future
# PRs (rounds/sec and messages/sec per driver at n = 2^14).
bench-engine:
	go run ./cmd/bench -engine-bench BENCH_congest.json

# Refresh the seed-pinned fault-tolerance sweep (safety must hold at every
# fault intensity; rounds and coverage are the recorded trajectory).
bench-faults:
	go run ./cmd/bench -faults BENCH_faults.json

# Refresh the seed-pinned tracing-overhead trajectory (E17: the ring
# recorder must stay within 15% wall-clock overhead at n = 2^14 on the
# pool driver; off / ring / JSONL are the recorded modes).
bench-trace:
	go run ./cmd/bench -trace-bench BENCH_trace.json

# Refresh the seed-pinned allocation trajectory (E18: allocations and
# bytes per run, allocations per message, messages/sec per driver at
# n = 2^14, with the sequential speedup over the PR-1 BENCH_congest.json
# baseline embedded in the artifact).
bench-alloc:
	go run ./cmd/bench -alloc-bench BENCH_alloc.json -alloc-baseline BENCH_congest.json

# Refresh the seed-pinned cores × n scaling trajectory (E19 / DESIGN.md
# S27: sequential + pool at workers ∈ {1,2,4,8,GOMAXPROCS} across
# n ∈ {2^18, 2^20, 2^22}, every cell's clean and faulted fingerprints
# forced bit-identical). GOMAXPROCS is raised to the widest request for
# the run; on fewer physical cores the wall-clock curve is hardware-bound
# and the artifact records num_cpu so the bound is visible.
bench-scale:
	go run ./cmd/bench -scale-bench BENCH_scale.json

# Refresh the seed-pinned dynamic-MIS trajectory (E20 / DESIGN.md S28:
# incremental-repair vs full-recompute throughput and the repaired-region
# size distribution on low-locality streams over tree and union-of-trees
# at n ∈ {2^12, 2^14, 2^16}). The n = 2^16 rows must beat full
# recomputation by ≥ 10x or the run fails; the sequential and pool
# drivers must agree on every stream fingerprint.
bench-dynmis:
	go run ./cmd/bench -dynmis-bench BENCH_dynmis.json

# Refresh the seed-pinned distributed-driver trajectory (E21: fleet shapes
# shards ∈ {1,2,4,8} at n = 2^10, each a set of worker OS processes over
# unix sockets; every shape must reproduce the sequential run's
# deterministic fingerprint bit-for-bit, clean and faulted, or the run
# fails; frame bytes and round-trip latency per round are the recorded
# transport cost).
bench-dist:
	go run ./cmd/bench -dist-bench BENCH_dist.json

# Refresh the seed-pinned layout-locality trajectory (E22 / DESIGN.md S30:
# identity vs degsort vs bfs over scrambled union / powerlaw / grid at
# n ∈ {2^16, 2^18, 2^20}; within every cell the sequential and pool
# fingerprints are forced identical, and the best non-identity layout on
# the densest family at the largest n must beat identity by ≥ 1.15x or
# the run fails).
bench-layout:
	go run ./cmd/bench -layout-bench BENCH_layout.json

# Engine driver micro-benchmarks (ns/round per driver at n = 2^11, 2^14).
bench:
	go test -run '^$$' -bench BenchmarkEngineDrivers -benchmem .
