# Developer entry points. The repo is plain `go build`-able; these targets
# just name the workflows CI and PRs rely on.

.PHONY: build test race bench-engine bench

build:
	go build ./...

test: build
	go test ./...

# Engine safety net: vet plus race-detector coverage of the CONGEST
# drivers (the sharded worker pool and the legacy goroutine-per-vertex
# driver are the only concurrent code in the repo).
race:
	go vet ./internal/congest/... && go test -race ./internal/congest/...

# Refresh the seed-pinned driver throughput trajectory consumed by future
# PRs (rounds/sec and messages/sec per driver at n = 2^14).
bench-engine:
	go run ./cmd/bench -engine-bench BENCH_congest.json

# Engine driver micro-benchmarks (ns/round per driver at n = 2^11, 2^14).
bench:
	go test -run '^$$' -bench BenchmarkEngineDrivers -benchmem .
